//! DNN operators and their analytic cost model.
//!
//! An [`Operator`] is one node of a model's data-flow graph, already
//! *instantiated* for a concrete input (batch size, sequence length): it
//! carries absolute FLOP / byte / thread-block counts and lowers 1:1 to a
//! [`KernelDesc`]. Shape math follows the standard formulas (conv FLOPs =
//! 2·K²·Cin·Cout·Hout·Wout·B, GEMM FLOPs = 2·M·N·K, element-wise traffic =
//! 2·elements·4 B), and parallelism follows a tiled-kernel model: matrix-like
//! kernels launch one block per `ELEMS_PER_BLOCK_GEMM` output elements,
//! element-wise kernels one per `ELEMS_PER_BLOCK_EW`.

use gpu_sim::KernelDesc;

/// Bytes per element (FP32 inference, as the paper's PyTorch setup).
pub const BYTES_PER_ELEM: f64 = 4.0;

/// Output elements computed per thread block by tiled GEMM-like kernels
/// (conv, linear, batched matmul).
pub const ELEMS_PER_BLOCK_GEMM: f64 = 8192.0;

/// Elements processed per thread block by element-wise kernels
/// (activations, normalisation, residual adds).
pub const ELEMS_PER_BLOCK_EW: f64 = 4096.0;

/// Coarse operator category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// 2-D convolution (optionally with fused bias).
    Conv2d,
    /// Fully-connected layer.
    Linear,
    /// Batched matrix multiply (attention score / context).
    MatMul,
    /// Element-wise activation (ReLU, GELU, …).
    Activation,
    /// Normalisation (batch-norm, layer-norm).
    Norm,
    /// Residual / element-wise addition.
    Add,
    /// Channel concatenation (Inception branches).
    Concat,
    /// Spatial pooling (max or average).
    Pool,
    /// Softmax over attention scores or logits.
    Softmax,
    /// Embedding lookup.
    Embedding,
}

impl OpKind {
    /// Short lower-case label used in operator names and stats.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Conv2d => "conv",
            OpKind::Linear => "linear",
            OpKind::MatMul => "matmul",
            OpKind::Activation => "act",
            OpKind::Norm => "norm",
            OpKind::Add => "add",
            OpKind::Concat => "concat",
            OpKind::Pool => "pool",
            OpKind::Softmax => "softmax",
            OpKind::Embedding => "embed",
        }
    }
}

/// One operator of an instantiated model graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Human-readable name, e.g. `"layer3.4/conv2"`.
    pub name: String,
    /// Category.
    pub kind: OpKind,
    /// Floating-point work, FLOPs.
    pub flops: f64,
    /// Global-memory traffic, bytes.
    pub bytes: f64,
    /// Resident parameter (weight) bytes — counted once per model for the
    /// deployment-memory accounting, independent of batch size.
    pub weight_bytes: f64,
    /// Thread blocks launched.
    pub blocks: f64,
}

impl Operator {
    /// Lower to the GPU simulator's kernel descriptor.
    pub fn kernel(&self) -> KernelDesc {
        KernelDesc::new(self.flops, self.bytes, self.blocks)
    }

    /// A 2-D convolution operator.
    ///
    /// * `b` batch, `cin`/`cout` channels, `hw_out` output spatial size
    ///   (height = width assumed), `k` kernel size.
    ///
    /// Includes input activations, weights, and output activations in its
    /// traffic (a fused conv+bias+ReLU kernel in cuDNN terms).
    pub fn conv2d(name: impl Into<String>, b: f64, cin: f64, cout: f64, hw_out: f64, k: f64) -> Self {
        Self::conv2d_rect(name, b, cin, cout, hw_out, hw_out, k, k)
    }

    /// A 2-D convolution with a rectangular kernel (Inception's factorised
    /// 1×7 / 7×1 convolutions).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_rect(
        name: impl Into<String>,
        b: f64,
        cin: f64,
        cout: f64,
        h_out: f64,
        w_out: f64,
        kh: f64,
        kw: f64,
    ) -> Self {
        let out_elems = b * cout * h_out * w_out;
        let in_elems = b * cin * h_out * w_out; // stride folded into out size; adequate for traffic
        let weight_elems = kh * kw * cin * cout;
        Self {
            name: name.into(),
            kind: OpKind::Conv2d,
            flops: 2.0 * kh * kw * cin * out_elems,
            bytes: (in_elems + weight_elems + out_elems) * BYTES_PER_ELEM,
            weight_bytes: weight_elems * BYTES_PER_ELEM,
            blocks: (out_elems / ELEMS_PER_BLOCK_GEMM).ceil().max(1.0),
        }
    }

    /// A fully-connected layer: `rows × cin · cin × cout`.
    ///
    /// `rows` is the GEMM M dimension (batch, or batch × sequence).
    pub fn linear(name: impl Into<String>, rows: f64, cin: f64, cout: f64) -> Self {
        let out_elems = rows * cout;
        Self {
            name: name.into(),
            kind: OpKind::Linear,
            flops: 2.0 * rows * cin * cout,
            bytes: (rows * cin + cin * cout + out_elems) * BYTES_PER_ELEM,
            weight_bytes: cin * cout * BYTES_PER_ELEM,
            blocks: (out_elems / ELEMS_PER_BLOCK_GEMM).ceil().max(1.0),
        }
    }

    /// A batched matrix multiply: `batches` independent `m × k · k × n`
    /// products (attention).
    pub fn matmul(name: impl Into<String>, batches: f64, m: f64, k: f64, n: f64) -> Self {
        let out_elems = batches * m * n;
        Self {
            name: name.into(),
            kind: OpKind::MatMul,
            flops: 2.0 * batches * m * k * n,
            bytes: (batches * (m * k + k * n) + out_elems) * BYTES_PER_ELEM,
            weight_bytes: 0.0, // both operands are activations
            blocks: (out_elems / ELEMS_PER_BLOCK_GEMM).ceil().max(1.0),
        }
    }

    /// An element-wise operator over `elems` elements reading `reads`
    /// input tensors of that size and writing one.
    fn elementwise(name: impl Into<String>, kind: OpKind, elems: f64, reads: f64, flops_per_elem: f64) -> Self {
        Self {
            name: name.into(),
            kind,
            flops: elems * flops_per_elem,
            bytes: elems * (reads + 1.0) * BYTES_PER_ELEM,
            weight_bytes: 0.0,
            blocks: (elems / ELEMS_PER_BLOCK_EW).ceil().max(1.0),
        }
    }

    /// Activation (ReLU/GELU) over `elems` elements.
    pub fn activation(name: impl Into<String>, elems: f64) -> Self {
        Self::elementwise(name, OpKind::Activation, elems, 1.0, 4.0)
    }

    /// Normalisation (batch-norm / layer-norm) over `elems` elements.
    pub fn norm(name: impl Into<String>, elems: f64) -> Self {
        Self::elementwise(name, OpKind::Norm, elems, 1.0, 8.0)
    }

    /// Residual addition of two `elems`-sized tensors.
    pub fn add(name: impl Into<String>, elems: f64) -> Self {
        Self::elementwise(name, OpKind::Add, elems, 2.0, 1.0)
    }

    /// Concatenation producing `elems` output elements.
    pub fn concat(name: impl Into<String>, elems: f64) -> Self {
        Self::elementwise(name, OpKind::Concat, elems, 1.0, 0.0)
    }

    /// Pooling with window `k×k` producing `out_elems` outputs.
    pub fn pool(name: impl Into<String>, out_elems: f64, k: f64) -> Self {
        Self {
            name: name.into(),
            kind: OpKind::Pool,
            flops: out_elems * k * k,
            bytes: out_elems * (k * k + 1.0) * BYTES_PER_ELEM,
            weight_bytes: 0.0,
            blocks: (out_elems / ELEMS_PER_BLOCK_EW).ceil().max(1.0),
        }
    }

    /// Softmax over `elems` elements.
    pub fn softmax(name: impl Into<String>, elems: f64) -> Self {
        Self::elementwise(name, OpKind::Softmax, elems, 1.0, 12.0)
    }

    /// Embedding lookup producing `out_elems` elements.
    pub fn embedding(name: impl Into<String>, out_elems: f64) -> Self {
        Self::elementwise(name, OpKind::Embedding, out_elems, 1.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_standard_formula() {
        // 3x3 conv, cin=64, cout=64, 56x56 output, batch 1:
        // 2*9*64*64*56*56 = 231M FLOPs.
        let op = Operator::conv2d("c", 1.0, 64.0, 64.0, 56.0, 3.0);
        assert!((op.flops - 2.0 * 9.0 * 64.0 * 64.0 * 3136.0).abs() < 1.0);
        assert_eq!(op.kind, OpKind::Conv2d);
    }

    #[test]
    fn conv_scales_linearly_in_batch() {
        let a = Operator::conv2d("c", 1.0, 64.0, 64.0, 56.0, 3.0);
        let b = Operator::conv2d("c", 32.0, 64.0, 64.0, 56.0, 3.0);
        assert!((b.flops / a.flops - 32.0).abs() < 1e-9);
        assert!(b.blocks > a.blocks);
    }

    #[test]
    fn linear_is_gemm() {
        let op = Operator::linear("fc", 32.0, 2048.0, 1000.0);
        assert!((op.flops - 2.0 * 32.0 * 2048.0 * 1000.0).abs() < 1.0);
    }

    #[test]
    fn matmul_attention_shape() {
        // 32 batches * 12 heads, s=64, d=64: scores are s x s.
        let op = Operator::matmul("scores", 384.0, 64.0, 64.0, 64.0);
        assert!((op.flops - 2.0 * 384.0 * 64.0_f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let gpu = gpu_sim::GpuSpec::a100();
        let op = Operator::add("add", 1e7);
        let k = op.kernel();
        assert!(k.t_memory_ms(&gpu) > k.t_compute_ms(&gpu));
    }

    #[test]
    fn big_conv_saturates_small_conv_does_not() {
        let gpu = gpu_sim::GpuSpec::a100();
        // VGG-style: 224x224x64, batch 32.
        let big = Operator::conv2d("vgg1", 32.0, 64.0, 64.0, 224.0, 3.0).kernel();
        assert!((big.occupancy(&gpu) - 1.0).abs() < 1e-9);
        // Deep ResNet-style: 7x7x512, batch 4.
        let small = Operator::conv2d("res5", 4.0, 512.0, 512.0, 7.0, 3.0).kernel();
        assert!(small.occupancy(&gpu) < 0.2, "occ {}", small.occupancy(&gpu));
    }

    #[test]
    fn weight_accounting() {
        // ResNet conv: 3x3x64x64 weights = 36864 params.
        let c = Operator::conv2d("c", 8.0, 64.0, 64.0, 56.0, 3.0);
        assert!((c.weight_bytes - 9.0 * 64.0 * 64.0 * 4.0).abs() < 1e-9);
        // Weights do not scale with batch.
        let c32 = Operator::conv2d("c", 32.0, 64.0, 64.0, 56.0, 3.0);
        assert_eq!(c.weight_bytes, c32.weight_bytes);
        // Activation-only ops own no weights.
        assert_eq!(Operator::add("a", 100.0).weight_bytes, 0.0);
        assert_eq!(Operator::matmul("m", 4.0, 8.0, 8.0, 8.0).weight_bytes, 0.0);
    }

    #[test]
    fn kernels_have_positive_blocks() {
        for op in [
            Operator::activation("a", 1.0),
            Operator::pool("p", 10.0, 2.0),
            Operator::embedding("e", 5.0),
            Operator::softmax("s", 3.0),
            Operator::concat("c", 7.0),
            Operator::norm("n", 9.0),
        ] {
            assert!(op.blocks >= 1.0);
            assert!(op.bytes > 0.0);
        }
    }
}
