//! The served model zoo (Table 1) and its instantiation cache.
//!
//! Seven models: six CV (ResNet-50/101/152, Inception-V3, VGG-16/19) with
//! batch sizes {4, 8, 16, 32}, plus BERT with batch sizes {4, 8, 16, 32} ×
//! sequence lengths {8, 16, 32, 64}. [`ModelLibrary`] pre-instantiates every
//! (model, input) combination once so serving loops never rebuild graphs,
//! and derives each service's QoS target the way §7.1 does: 2× the solo-run
//! latency of the model's *maximum* input on the target GPU.

use crate::graph::ModelGraph;
use crate::{bert, inception, lstm, resnet, vgg};
use gpu_sim::GpuSpec;
use std::collections::HashMap;
use std::sync::Arc;
use workload::SeededRng;

/// Batch-size choices shared by every model (Table 1).
pub const BATCH_CHOICES: [u32; 4] = [4, 8, 16, 32];
/// Sequence-length choices for BERT (Table 1).
pub const SEQ_CHOICES: [u32; 4] = [8, 16, 32, 64];

/// The seven DNN services of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// ResNet-50.
    ResNet50,
    /// ResNet-101.
    ResNet101,
    /// ResNet-152.
    ResNet152,
    /// Inception-V3.
    InceptionV3,
    /// VGG-16.
    Vgg16,
    /// VGG-19.
    Vgg19,
    /// BERT-base.
    Bert,
    /// Stacked LSTM (extension model; footnote 2 of the paper — not part
    /// of the Table 1 serving set).
    Lstm,
}

/// Number of models the runtime supports (the Fig. 8 bitmap width).
pub const MODEL_COUNT: usize = ModelId::ALL.len();

impl ModelId {
    /// All supported models: the paper's seven plus the LSTM extension.
    pub const ALL: [ModelId; 8] = [
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::InceptionV3,
        ModelId::Vgg16,
        ModelId::Vgg19,
        ModelId::Bert,
        ModelId::Lstm,
    ];

    /// The seven models of Table 1, in the paper's figure order.
    pub const PAPER_MODELS: [ModelId; 7] = [
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::InceptionV3,
        ModelId::Vgg16,
        ModelId::Vgg19,
        ModelId::Bert,
    ];

    /// Short display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::ResNet50 => "Res50",
            ModelId::ResNet101 => "Res101",
            ModelId::ResNet152 => "Res152",
            ModelId::InceptionV3 => "IncepV3",
            ModelId::Vgg16 => "VGG16",
            ModelId::Vgg19 => "VGG19",
            ModelId::Bert => "Bert",
            ModelId::Lstm => "LSTM",
        }
    }

    /// Stable index in `[0, 7)` — the bit position in Fig. 8's multi-hot
    /// model vector.
    pub fn index(self) -> usize {
        ModelId::ALL.iter().position(|&m| m == self).unwrap()
    }

    /// Inverse of [`ModelId::index`].
    pub fn from_index(i: usize) -> ModelId {
        ModelId::ALL[i]
    }

    /// True for models whose cost depends on sequence length.
    pub fn is_nlp(self) -> bool {
        matches!(self, ModelId::Bert | ModelId::Lstm)
    }

    /// Valid sequence-length choices (CV models have the single value 1).
    pub fn seq_choices(self) -> &'static [u32] {
        if self.is_nlp() {
            &SEQ_CHOICES
        } else {
            &[1]
        }
    }

    /// The largest input (used for QoS calibration).
    pub fn max_input(self) -> QueryInput {
        QueryInput {
            batch: 32,
            seq: if self.is_nlp() { 64 } else { 1 },
        }
    }

    /// The smallest input (used by the Fig. 16 small-DNN experiment).
    pub fn min_input(self) -> QueryInput {
        QueryInput {
            batch: 4,
            seq: if self.is_nlp() { 8 } else { 1 },
        }
    }

    /// Instantiate the model's operator graph for `input`.
    pub fn build(self, input: QueryInput) -> ModelGraph {
        match self {
            ModelId::ResNet50 => resnet::build(50, input.batch),
            ModelId::ResNet101 => resnet::build(101, input.batch),
            ModelId::ResNet152 => resnet::build(152, input.batch),
            ModelId::InceptionV3 => inception::build(input.batch),
            ModelId::Vgg16 => vgg::build(16, input.batch),
            ModelId::Vgg19 => vgg::build(19, input.batch),
            ModelId::Bert => bert::build(input.batch, input.seq),
            ModelId::Lstm => lstm::build(input.batch, input.seq),
        }
    }
}

/// A concrete query input: batch size and (for NLP models) sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryInput {
    /// Batch size.
    pub batch: u32,
    /// Sequence length; 1 for CV models.
    pub seq: u32,
}

impl QueryInput {
    /// Convenience constructor.
    pub fn new(batch: u32, seq: u32) -> Self {
        Self { batch, seq }
    }
}

/// Pre-instantiated graphs for every (model, input) combination plus memoised
/// solo latencies, kernel lowerings and QoS targets.
#[derive(Debug, Clone)]
pub struct ModelLibrary {
    graphs: HashMap<(ModelId, QueryInput), Arc<ModelGraph>>,
    /// Memoised full-graph kernel lowering, one entry per graph. A segment
    /// `[start, end)` lowers to `kernels[start..end]` (lowering is
    /// per-operator), so this one cache serves every op range and the
    /// serving inner loop never re-derives kernels per group.
    kernels: HashMap<(ModelId, QueryInput), Arc<[gpu_sim::KernelDesc]>>,
}

impl ModelLibrary {
    /// Build the full library (56 graphs; a few milliseconds).
    pub fn new() -> Self {
        Self::new_with(|g| g)
    }

    /// Build the library, applying `transform` to every instantiated graph
    /// (e.g. the element-wise fusion pass of `crate::fuse`).
    pub fn new_with(transform: impl Fn(ModelGraph) -> ModelGraph) -> Self {
        let mut graphs = HashMap::new();
        let mut kernels = HashMap::new();
        for m in ModelId::ALL {
            for &batch in &BATCH_CHOICES {
                for &seq in m.seq_choices() {
                    let input = QueryInput { batch, seq };
                    let graph = transform(m.build(input));
                    kernels.insert((m, input), graph.kernels().into());
                    graphs.insert((m, input), Arc::new(graph));
                }
            }
        }
        Self { graphs, kernels }
    }

    /// The graph for `(model, input)`.
    ///
    /// # Panics
    /// Panics if `input` is not a Table-1 combination.
    pub fn graph(&self, model: ModelId, input: QueryInput) -> &Arc<ModelGraph> {
        self.graphs
            .get(&(model, input))
            .unwrap_or_else(|| panic!("{:?} has no input {:?}", model, input))
    }

    /// Cached kernel lowering of the whole `(model, input)` graph —
    /// equivalent to `graph.kernels()` without the per-call allocation.
    ///
    /// # Panics
    /// Panics if `input` is not a Table-1 combination.
    pub fn kernels(&self, model: ModelId, input: QueryInput) -> &[gpu_sim::KernelDesc] {
        self.kernels
            .get(&(model, input))
            .unwrap_or_else(|| panic!("{:?} has no input {:?}", model, input))
    }

    /// Cached lowering of the operator segment `[start, end)` — equivalent
    /// to `graph.kernels_range(start, end)` without the allocation.
    pub fn kernels_range(
        &self,
        model: ModelId,
        input: QueryInput,
        start: usize,
        end: usize,
    ) -> &[gpu_sim::KernelDesc] {
        let all = self.kernels(model, input);
        assert!(start <= end && end <= all.len(), "invalid range");
        &all[start..end]
    }

    /// Solo latency of `(model, input)` on `gpu`, ms (noise-free).
    pub fn solo_ms(&self, model: ModelId, input: QueryInput, gpu: &GpuSpec) -> f64 {
        self.graph(model, input).solo_ms(gpu)
    }

    /// QoS target on `gpu`: 2× the solo latency of the model's maximum
    /// input, floored at 50 ms (§7.1 reports the resulting targets "ranging
    /// from 50 to 150 milliseconds"; the floor keeps every service's budget
    /// in that band even where our simulated solos run faster than the
    /// paper's PyTorch stack).
    pub fn qos_target_ms(&self, model: ModelId, gpu: &GpuSpec) -> f64 {
        (2.0 * self.solo_ms(model, model.max_input(), gpu)).max(50.0)
    }

    /// Tight QoS target for the Fig. 16 small-DNN experiment: 2× the solo
    /// latency of the model's *minimum* input.
    pub fn qos_target_small_ms(&self, model: ModelId, gpu: &GpuSpec) -> f64 {
        2.0 * self.solo_ms(model, model.min_input(), gpu)
    }

    /// Draw a random Table-1 input for `model` (batch uniform over
    /// {4,8,16,32}; seq uniform over {8,16,32,64} for BERT).
    pub fn random_input(&self, model: ModelId, rng: &mut SeededRng) -> QueryInput {
        QueryInput {
            batch: *rng.choose(&BATCH_CHOICES),
            seq: *rng.choose(model.seq_choices()),
        }
    }
}

impl Default for ModelLibrary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_combinations() {
        let lib = ModelLibrary::new();
        // 6 CV models x 4 batches + (BERT + LSTM) x 4 x 4 = 56 graphs.
        assert_eq!(lib.graphs.len(), 6 * 4 + 2 * 16);
        for m in ModelId::ALL {
            let g = lib.graph(m, m.max_input());
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, m) in ModelId::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(ModelId::from_index(i), m);
        }
    }

    #[test]
    fn qos_targets_in_paper_band() {
        // §7.1: QoS targets range from 50 to 150 ms. Our simulated solo
        // latencies put every 2x target in (or near) that band.
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        for m in ModelId::ALL {
            let qos = lib.qos_target_ms(m, &gpu);
            assert!((20.0..170.0).contains(&qos), "{}: qos {qos} ms", m.name());
        }
    }

    #[test]
    fn small_qos_tighter() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        for m in ModelId::ALL {
            assert!(lib.qos_target_small_ms(m, &gpu) < lib.qos_target_ms(m, &gpu));
        }
    }

    #[test]
    fn random_inputs_are_valid() {
        let lib = ModelLibrary::new();
        let mut rng = SeededRng::new(3);
        for _ in 0..100 {
            let input = lib.random_input(ModelId::Bert, &mut rng);
            assert!(BATCH_CHOICES.contains(&input.batch));
            assert!(SEQ_CHOICES.contains(&input.seq));
            let cv = lib.random_input(ModelId::Vgg16, &mut rng);
            assert_eq!(cv.seq, 1);
        }
    }

    #[test]
    fn heavy_models_have_no_smaller_qos() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let r50 = lib.qos_target_ms(ModelId::ResNet50, &gpu);
        assert!(lib.qos_target_ms(ModelId::Vgg19, &gpu) >= r50);
        assert!(lib.qos_target_ms(ModelId::ResNet152, &gpu) > r50);
    }
}
