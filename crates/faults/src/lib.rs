//! Seedable, bit-reproducible fault injection for the serving stack.
//!
//! Abacus's QoS claim rests on co-run latency being *predictable*; this
//! crate supplies the adversarial conditions under which that assumption is
//! deliberately broken, so the scheduler's defensive machinery (drop
//! mechanism, safety margin, FCFS degradation, per-query timeout) can be
//! exercised and its invariants checked. A [`FaultPlan`] bundles four
//! orthogonal injections, all derived from one base seed via forked
//! SplitMix64 streams (the repo-wide reproducibility contract):
//!
//! * **kernel latency spikes** — [`KernelSpikes`] lowers to a
//!   [`gpu_sim::KernelFaultSpec`] installed in the engine: individual
//!   kernels get `factor`× slower with probability `prob` inside a busy-time
//!   window;
//! * **predictor misprediction** — [`FaultyModel`] wraps any
//!   [`LatencyModel`] and biases or freezes its output (outputs are always
//!   sanitised to finite, non-negative values);
//! * **arrival bursts** — [`burst_arrivals`] generates an extra Poisson
//!   surge inside a window, merged into the base workload *without*
//!   perturbing the base stream's RNG draws;
//! * **node degradation** — [`NodeDegradation`] marks a cluster node's GPUs
//!   as uniformly slowed (MIG-slice-loss-style capacity reduction), applied
//!   by `cluster::sim`.
//!
//! `FaultPlan::none()` is the identity: every consumer treats it as "hooks
//! disabled" and produces bit-identical output to a build without the fault
//! layer (pinned by the golden no-fault tests).

use gpu_sim::KernelFaultSpec;
use predictor::LatencyModel;
use std::sync::Arc;
use workload::{fork_seed, Arrival, Exponential, SeededRng};

/// Fork label for the kernel spike stream.
const LABEL_KERNEL: u64 = 0xFA01;
/// Fork label for the burst arrival stream.
const LABEL_BURST: u64 = 0xFA02;
/// Fork label for the burst input stream.
const LABEL_BURST_INPUT: u64 = 0xFA03;

/// Kernel latency-spike regime (lowers to [`gpu_sim::KernelFaultSpec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpikes {
    /// Per-kernel spike probability in `[0, 1]`.
    pub prob: f64,
    /// Solo-duration multiplier for spiked kernels.
    pub factor: f64,
    /// Window start in cumulative GPU busy time, ms.
    pub window_start_ms: f64,
    /// Window end, ms (`f64::INFINITY` = whole run).
    pub window_end_ms: f64,
}

impl KernelSpikes {
    /// Spikes active for the whole run.
    pub fn always(prob: f64, factor: f64) -> Self {
        Self {
            prob,
            factor,
            window_start_ms: 0.0,
            window_end_ms: f64::INFINITY,
        }
    }
}

/// Predictor misprediction injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorFault {
    /// Multiply every prediction by `factor` (< 1 ⇒ systematic
    /// under-prediction — the dangerous direction: groups overrun their
    /// certified budget).
    Bias {
        /// Multiplicative bias applied to the wrapped model's output.
        factor: f64,
    },
    /// Ignore the input entirely and always answer `value_ms` (total
    /// predictor failure — e.g. a wedged inference side-car).
    Freeze {
        /// The constant answer, ms.
        value_ms: f64,
    },
}

/// An extra Poisson arrival surge on top of the base workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalBurst {
    /// Burst window start, ms.
    pub start_ms: f64,
    /// Burst window end, ms.
    pub end_ms: f64,
    /// Extra offered load during the window, queries/second *aggregate*
    /// (split evenly across the deployed services).
    pub extra_qps: f64,
}

/// One cluster node running at reduced capacity (e.g. a lost MIG slice or
/// thermally throttled GPUs). Applied by `cluster::sim`: every GPU on the
/// node computes and moves data `slowdown`× slower while QoS targets stay
/// calibrated to healthy hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeDegradation {
    /// Index of the degraded node.
    pub node: usize,
    /// Capacity slowdown factor (> 1; 2.0 ≈ losing half the slices).
    pub slowdown: f64,
}

/// A complete, seedable fault scenario. See module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base seed; every injection forks its own stream off it.
    pub seed: u64,
    /// Kernel latency spikes, if any.
    pub kernel: Option<KernelSpikes>,
    /// Predictor misprediction, if any.
    pub predictor: Option<PredictorFault>,
    /// Arrival burst, if any.
    pub burst: Option<ArrivalBurst>,
    /// Degraded cluster nodes (empty = all healthy).
    pub degraded: Vec<NodeDegradation>,
}

impl FaultPlan {
    /// The identity plan: nothing is injected, all hooks stay disabled and
    /// every consumer is bit-identical to a run without the fault layer.
    pub fn none() -> Self {
        Self {
            seed: 0,
            kernel: None,
            predictor: None,
            burst: None,
            degraded: Vec::new(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.kernel.is_none()
            && self.predictor.is_none()
            && self.burst.is_none()
            && self.degraded.is_empty()
    }

    /// A canonical scenario family parameterised by `intensity ∈ [0, 1]`,
    /// used by the CLI fault sweep and the metamorphic monotonicity tests.
    /// Intensity 0 is exactly [`FaultPlan::none`]; raising it makes every
    /// injection strictly harsher: more and bigger kernel spikes, stronger
    /// predictor under-prediction, a larger mid-run arrival surge.
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1]"
        );
        if intensity == 0.0 {
            return Self::none();
        }
        Self {
            seed,
            kernel: Some(KernelSpikes::always(0.3 * intensity, 1.0 + 3.0 * intensity)),
            predictor: Some(PredictorFault::Bias {
                factor: 1.0 - 0.5 * intensity,
            }),
            burst: Some(ArrivalBurst {
                start_ms: 2_000.0,
                end_ms: 4_000.0,
                extra_qps: 60.0 * intensity,
            }),
            degraded: Vec::new(),
        }
    }

    /// Lower the kernel-spike component to the engine-level spec, its seed
    /// forked off the plan seed.
    pub fn kernel_fault_spec(&self) -> Option<KernelFaultSpec> {
        self.kernel.map(|k| KernelFaultSpec {
            seed: fork_seed(self.seed, LABEL_KERNEL),
            window_start_ms: k.window_start_ms,
            window_end_ms: k.window_end_ms,
            prob: k.prob,
            factor: k.factor,
        })
    }

    /// Wrap `model` with this plan's predictor fault; returns the model
    /// unchanged when no predictor fault is planned.
    pub fn wrap_predictor(&self, model: Arc<dyn LatencyModel>) -> Arc<dyn LatencyModel> {
        match self.predictor {
            Some(fault) => Arc::new(FaultyModel::new(model, fault)),
            None => model,
        }
    }

    /// Capacity slowdown of `node` under this plan (1.0 = healthy).
    pub fn node_slowdown(&self, node: usize) -> f64 {
        self.degraded
            .iter()
            .find(|d| d.node == node)
            .map_or(1.0, |d| d.slowdown)
    }
}

/// Clamp a predicted latency to a finite, non-negative value. A faulty (or
/// fault-wrapped) predictor must never leak NaN/∞/negative numbers into the
/// scheduler — the search's feasibility comparisons treat non-finite
/// predictions as infeasible, but the contract is enforced here at the
/// source.
pub fn sanitize_prediction(x: f64) -> f64 {
    if x.is_finite() && x >= 0.0 {
        x
    } else if x == f64::INFINITY {
        f64::MAX
    } else {
        0.0
    }
}

/// A [`LatencyModel`] wrapper injecting deterministic misprediction.
///
/// Output contract: always finite and non-negative, whatever the inner
/// model or the fault parameters produce (see [`sanitize_prediction`]).
pub struct FaultyModel {
    inner: Arc<dyn LatencyModel>,
    fault: PredictorFault,
}

impl FaultyModel {
    /// Wrap `inner` with `fault`.
    pub fn new(inner: Arc<dyn LatencyModel>, fault: PredictorFault) -> Self {
        Self { inner, fault }
    }

    fn apply(&self, y: f64) -> f64 {
        let faulted = match self.fault {
            PredictorFault::Bias { factor } => y * factor,
            PredictorFault::Freeze { value_ms } => value_ms,
        };
        sanitize_prediction(faulted)
    }
}

impl LatencyModel for FaultyModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.apply(self.inner.predict_one(x))
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        self.inner.predict_into(xs, n, out);
        for y in out.iter_mut() {
            *y = self.apply(*y);
        }
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// Generate the extra arrivals of `burst` for `n_services` services, split
/// evenly, from a stream forked off `plan_seed`. Returned arrivals are
/// time-sorted; the caller merges them into the base workload (the base
/// stream's own RNG draws are untouched — injection must not silently
/// reshuffle the no-fault workload).
pub fn burst_arrivals(burst: &ArrivalBurst, n_services: usize, plan_seed: u64) -> Vec<Arrival> {
    assert!(n_services > 0, "need at least one service");
    assert!(burst.end_ms >= burst.start_ms, "burst window inverted");
    let mut rng = SeededRng::new(fork_seed(plan_seed, LABEL_BURST));
    let per_service_qps = burst.extra_qps / n_services as f64;
    if per_service_qps <= 0.0 {
        return Vec::new();
    }
    let inter = Exponential::new(per_service_qps / 1000.0);
    let mut out = Vec::new();
    for service in 0..n_services {
        let mut t = burst.start_ms;
        loop {
            t += inter.sample(&mut rng);
            if t >= burst.end_ms {
                break;
            }
            out.push(Arrival { service, at_ms: t });
        }
    }
    out.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms).then(a.service.cmp(&b.service)));
    out
}

/// The RNG stream burst-arrival *inputs* should be drawn from (separate
/// from the arrival-time stream, so input draws do not depend on how many
/// arrivals the burst produced for earlier services).
pub fn burst_input_rng(plan_seed: u64) -> SeededRng {
    SeededRng::new(fork_seed(plan_seed, LABEL_BURST_INPUT))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LatencyModel for Echo {
        fn predict_one(&self, x: &[f64]) -> f64 {
            x[0]
        }
        fn name(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn none_plan_is_identity() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.kernel_fault_spec().is_none());
        assert_eq!(p.node_slowdown(0), 1.0);
        let m: Arc<dyn LatencyModel> = Arc::new(Echo);
        let wrapped = p.wrap_predictor(m.clone());
        assert_eq!(wrapped.predict_one(&[3.5]), 3.5);
        assert_eq!(wrapped.name(), "echo"); // not wrapped at all
    }

    #[test]
    fn intensity_zero_is_none_and_scales_monotonically() {
        assert!(FaultPlan::at_intensity(1, 0.0).is_none());
        let lo = FaultPlan::at_intensity(1, 0.25);
        let hi = FaultPlan::at_intensity(1, 1.0);
        let (klo, khi) = (lo.kernel.unwrap(), hi.kernel.unwrap());
        assert!(khi.prob > klo.prob && khi.factor > klo.factor);
        let bias = |p: &FaultPlan| match p.predictor.unwrap() {
            PredictorFault::Bias { factor } => factor,
            _ => panic!("expected bias"),
        };
        assert!(bias(&hi) < bias(&lo));
        assert!(hi.burst.unwrap().extra_qps > lo.burst.unwrap().extra_qps);
    }

    #[test]
    fn bias_and_freeze_apply() {
        let m: Arc<dyn LatencyModel> = Arc::new(Echo);
        let biased = FaultyModel::new(m.clone(), PredictorFault::Bias { factor: 0.5 });
        assert_eq!(biased.predict_one(&[8.0]), 4.0);
        let frozen = FaultyModel::new(m, PredictorFault::Freeze { value_ms: 2.0 });
        assert_eq!(frozen.predict_one(&[8.0]), 2.0);
        let mut out = Vec::new();
        biased.predict_into(&[8.0, 10.0], 2, &mut out);
        assert_eq!(out, vec![4.0, 5.0]);
    }

    #[test]
    fn outputs_always_finite_and_non_negative() {
        struct Nasty;
        impl LatencyModel for Nasty {
            fn predict_one(&self, x: &[f64]) -> f64 {
                x[0] // echoes whatever poison the test feeds it
            }
            fn name(&self) -> &'static str {
                "nasty"
            }
        }
        let m: Arc<dyn LatencyModel> = Arc::new(Nasty);
        for fault in [
            PredictorFault::Bias { factor: -3.0 },
            PredictorFault::Bias { factor: f64::INFINITY },
            PredictorFault::Freeze { value_ms: f64::NAN },
            PredictorFault::Freeze { value_ms: -1.0 },
        ] {
            let f = FaultyModel::new(m.clone(), fault);
            for poison in [1.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let y = f.predict_one(&[poison]);
                assert!(y.is_finite() && y >= 0.0, "{fault:?} on {poison} gave {y}");
            }
        }
    }

    #[test]
    fn burst_arrivals_live_in_window_and_reproduce() {
        let b = ArrivalBurst {
            start_ms: 100.0,
            end_ms: 600.0,
            extra_qps: 200.0,
        };
        let a1 = burst_arrivals(&b, 3, 77);
        let a2 = burst_arrivals(&b, 3, 77);
        assert_eq!(a1, a2);
        assert!(!a1.is_empty());
        assert!(a1.iter().all(|a| a.at_ms > 100.0 && a.at_ms < 600.0));
        assert!(a1.iter().all(|a| a.service < 3));
        assert!(a1.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // ~200 qps over 0.5 s ⇒ ~100 arrivals.
        assert!((50..200).contains(&a1.len()), "{}", a1.len());
        // Different seed, different draw.
        assert_ne!(burst_arrivals(&b, 3, 78), a1);
    }

    #[test]
    fn zero_qps_burst_is_empty() {
        let b = ArrivalBurst {
            start_ms: 0.0,
            end_ms: 1000.0,
            extra_qps: 0.0,
        };
        assert!(burst_arrivals(&b, 2, 1).is_empty());
    }
}
