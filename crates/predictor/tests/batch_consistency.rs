//! Property tests: the batched prediction paths (`predict_into`,
//! `predict_batch`) of all three predictors agree with the per-sample
//! `predict_one` to within 1e-9 for arbitrary batch sizes 1..=32 — the
//! batched kernel must be safe to substitute in the multi-way search.

use predictor::{
    Dataset, LatencyModel, LinearRegression, LinearSvr, Mlp, MlpConfig, SvrConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;
use workload::SeededRng;

const DIM: usize = 23;

fn synthetic(n: usize, seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let x: Vec<f64> = (0..DIM).map(|_| rng.f64()).collect();
        let y = 5.0 + x.iter().sum::<f64>() + 3.0 * (x[0] - 0.5).max(0.0);
        d.push(x, y);
    }
    d
}

fn models() -> &'static Vec<Box<dyn LatencyModel>> {
    static MODELS: OnceLock<Vec<Box<dyn LatencyModel>>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let d = synthetic(200, 7);
        vec![
            Box::new(Mlp::train(
                &d,
                &MlpConfig {
                    epochs: 5,
                    ..MlpConfig::default()
                },
            )),
            Box::new(LinearRegression::fit(&d, 1e-6)),
            Box::new(LinearSvr::fit(
                &d,
                &SvrConfig {
                    epochs: 10,
                    ..SvrConfig::default()
                },
            )),
        ]
    })
}

/// Batches are sparse-ish like real Fig. 8 rows: some features zeroed.
fn arb_batch() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((0.0f64..1.0, 0usize..4), DIM..(DIM + 1)).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(v, zero)| if zero == 0 { 0.0 } else { v })
                .collect()
        }),
        1..33,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_paths_agree_with_predict_one(batch in arb_batch()) {
        let flat: Vec<f64> = batch.iter().flatten().copied().collect();
        for model in models() {
            let one: Vec<f64> = batch.iter().map(|row| model.predict_one(row)).collect();
            let via_batch = model.predict_batch(&batch);
            let mut via_into = Vec::new();
            model.predict_into(&flat, batch.len(), &mut via_into);
            prop_assert_eq!(one.len(), via_batch.len());
            prop_assert_eq!(one.len(), via_into.len());
            for (i, &o) in one.iter().enumerate() {
                prop_assert!(
                    (o - via_batch[i]).abs() <= 1e-9,
                    "{} predict_batch row {i}: {o} vs {}", model.name(), via_batch[i]
                );
                prop_assert!(
                    (o - via_into[i]).abs() <= 1e-9,
                    "{} predict_into row {i}: {o} vs {}", model.name(), via_into[i]
                );
            }
        }
    }

    /// The MLP's batched engine matches the pre-batching scalar reference
    /// bit for bit (same IEEE operation sequence per output).
    #[test]
    fn mlp_batched_is_bit_identical_to_scalar_reference(batch in arb_batch()) {
        static MLP: OnceLock<Mlp> = OnceLock::new();
        let mlp = MLP.get_or_init(|| {
            Mlp::train(&synthetic(200, 8), &MlpConfig { epochs: 5, ..MlpConfig::default() })
        });
        let preds = mlp.predict_batch(&batch);
        for (row, &p) in batch.iter().zip(&preds) {
            prop_assert_eq!(p, mlp.predict_one_scalar(row));
        }
    }
}
