//! Golden pin for the minibatch matrix-form trainer: [`Mlp::train`] must
//! reproduce the preserved pre-refactor scalar trainer
//! ([`Mlp::train_reference`]).
//!
//! Two regimes, per DESIGN.md's training-determinism rules:
//!
//! - Minibatches of at most one gradient chunk (`batch_size <= 16`)
//!   reproduce the reference's floating-point accumulation order exactly,
//!   so the trained weights must match **bit for bit**.
//! - Wider minibatches differ only in the cross-chunk summation tree, so
//!   weights must agree to 1e-9 after a short training run.
//!
//! A third pin: training with `serial: true` (all gradient chunks on the
//! calling thread) and `serial: false` (worker-pool fan-out) must produce
//! bit-identical models — thread-count independence is a hard contract.

use predictor::{Dataset, LatencyModel, Mlp, MlpConfig, QuantileMlp};
use workload::SeededRng;

const TAUS: [f64; 3] = [0.9, 0.95, 0.99];

fn synthetic(n: usize, seed: u64) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let x: Vec<f64> = (0..6).map(|_| rng.f64()).collect();
        let y = 8.0 + 25.0 * x[0] + 12.0 * (x[1] - 0.4).max(0.0) + 4.0 * x[2] * x[3];
        d.push(x, y);
    }
    d
}

#[test]
fn single_chunk_minibatches_match_reference_bit_for_bit() {
    let d = synthetic(300, 11);
    for quantile in [None, Some(0.9)] {
        let cfg = MlpConfig {
            epochs: 8,
            batch_size: 16,
            quantile,
            ..MlpConfig::default()
        };
        let new = Mlp::train(&d, &cfg);
        let old = Mlp::train_reference(&d, &cfg);
        assert_eq!(new, old, "quantile {quantile:?}");
    }
}

#[test]
fn multi_chunk_minibatches_match_reference_within_tolerance() {
    let d = synthetic(400, 12);
    let cfg = MlpConfig {
        epochs: 6,
        batch_size: 64,
        ..MlpConfig::default()
    };
    let new = Mlp::train(&d, &cfg);
    let old = Mlp::train_reference(&d, &cfg);
    assert_eq!(new.dims(), old.dims());
    let (pn, po) = (new.raw_params(), old.raw_params());
    for (j, (a, b)) in pn.iter().zip(&po).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9,
            "param {j} drifted: {a} vs {b} (|Δ| = {:e})",
            (a - b).abs()
        );
    }
    // And the drift is invisible at prediction level.
    let probe = vec![0.3, 0.7, 0.1, 0.9, 0.5, 0.2];
    assert!((new.predict_one(&probe) - old.predict_one(&probe)).abs() <= 1e-6);
}

#[test]
fn quantile_single_chunk_minibatches_match_reference_bit_for_bit() {
    // The multi-head pinball trainer shares the batched kernels with the
    // scalar-loss path; inside one gradient chunk the accumulation order
    // matches the scalar reference exactly, across head counts and shapes.
    let d = synthetic(300, 21);
    for taus in [&TAUS[..1], &TAUS[..2], &TAUS[..]] {
        for batch_size in [8usize, 16] {
            let cfg = MlpConfig {
                epochs: 8,
                batch_size,
                ..MlpConfig::default()
            };
            let new = QuantileMlp::train(&d, &cfg, taus);
            let old = QuantileMlp::train_reference(&d, &cfg, taus);
            assert_eq!(new, old, "taus {taus:?} batch {batch_size}");
        }
    }
}

#[test]
fn quantile_multi_chunk_minibatches_match_reference_within_tolerance() {
    let d = synthetic(400, 22);
    let cfg = MlpConfig {
        epochs: 6,
        batch_size: 64,
        ..MlpConfig::default()
    };
    let new = QuantileMlp::train(&d, &cfg, &TAUS);
    let old = QuantileMlp::train_reference(&d, &cfg, &TAUS);
    assert_eq!(new.dims(), old.dims());
    let (pn, po) = (new.raw_params(), old.raw_params());
    for (j, (a, b)) in pn.iter().zip(&po).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9,
            "param {j} drifted: {a} vs {b} (|Δ| = {:e})",
            (a - b).abs()
        );
    }
}

#[test]
fn quantile_serial_and_pooled_training_are_bit_identical() {
    let d = synthetic(400, 23);
    let pooled = QuantileMlp::train(
        &d,
        &MlpConfig {
            epochs: 6,
            ..MlpConfig::default()
        },
        &TAUS,
    );
    let serial = QuantileMlp::train(
        &d,
        &MlpConfig {
            epochs: 6,
            serial: true,
            ..MlpConfig::default()
        },
        &TAUS,
    );
    assert_eq!(pooled, serial);
}

#[test]
fn serial_and_pooled_training_are_bit_identical() {
    let d = synthetic(400, 13);
    let pooled = Mlp::train(
        &d,
        &MlpConfig {
            epochs: 6,
            ..MlpConfig::default()
        },
    );
    let serial = Mlp::train(
        &d,
        &MlpConfig {
            epochs: 6,
            serial: true,
            ..MlpConfig::default()
        },
    );
    assert_eq!(pooled, serial);
}
