//! Split-conformal calibration of the quantile certification heads
//! (DESIGN.md §14).
//!
//! The p90/p95/p99 heads of a [`QuantileMlp`] are point estimates with no
//! finite-sample guarantee — and the PR 5 width-split study showed exactly
//! where they would inherit the mean model's blind spot: solo rounds are
//! out-of-distribution for the §5.4 instance sampler (~103% |err|), so a
//! head trained mostly on multi-way groups under-covers them. Split
//! conformal fixes both problems at once: on a held-out calibration slice
//! the residual scores `s_i = y_i − q̂(x_i)` are ranked and the
//! `⌈(n+1)·τ⌉`-th smallest becomes an additive correction, which makes
//! `q̂(x) + c` cover a fresh exchangeable sample with probability ≥ τ.
//! Scores are stratified by *group width* (the number of co-located
//! services, read off the feature vector's multi-hot presence bits), so a
//! stratum the sampler under-covers — solo rounds — earns its correction
//! from its own, wider, residual distribution instead of being averaged
//! away by the well-covered multi-way mass.
//!
//! [`ConformalModel`] packages the heads plus the calibration table behind
//! [`LatencyModel`], returning the calibrated upper bound at one chosen
//! level — the drop-in certifier `AbacusScheduler` plans against in
//! conformal mode.

use crate::dataset::Dataset;
use crate::features::{MAX_COLOCATED, MODEL_SLOT_BASE};
use crate::mlp::QuantileMlp;
use crate::LatencyModel;

/// Quantile levels of the certification heads (p90/p95/p99).
pub const CERT_TAUS: [f64; 3] = [0.90, 0.95, 0.99];

/// Minimum calibration points for a width stratum to earn its own
/// corrections; thinner strata fall back to the pooled (all-widths) table
/// rather than trusting a quantile of a handful of scores.
const MIN_STRATUM: usize = 20;

/// Group width of one Fig. 8 feature row: the number of set presence bits
/// in the multi-hot model bitmap, clamped to `1..=MAX_COLOCATED`. Rows
/// shorter than the bitmap (synthetic test datasets) collapse into the
/// width-1 stratum.
pub fn width_of_row(x: &[f64]) -> usize {
    let bits = x.len().min(MODEL_SLOT_BASE);
    let w = x[..bits].iter().filter(|&&v| v > 0.5).count();
    w.clamp(1, MAX_COLOCATED)
}

/// The split-conformal rank: index (1-based) of the score that upper-bounds
/// a fresh sample with probability ≥ `tau` given `n` calibration scores,
/// clamped to `n` (a stratum too small for its level keeps the max score
/// rather than an infinite bound; [`MIN_STRATUM`] keeps this rare).
fn conformal_rank(n: usize, tau: f64) -> usize {
    (((n + 1) as f64 * tau).ceil() as usize).clamp(1, n)
}

/// Per-width-stratum split-conformal correction table for a set of
/// quantile heads. Pure calibration math — the coverage property tests
/// drive this directly on synthetic scores, independent of any network.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedConformal {
    /// Quantile level per head, ascending (mirrors the heads' `taus`).
    taus: Vec<f64>,
    /// `corrections[s][h]`: additive correction for group width `s + 1`,
    /// head `h`. Strata below [`MIN_STRATUM`] hold the pooled row.
    corrections: Vec<Vec<f64>>,
    /// Calibration points per width stratum.
    counts: Vec<usize>,
    /// Corrections over the pooled calibration slice (all widths).
    pooled: Vec<f64>,
}

impl StratifiedConformal {
    /// Calibrate from raw scores: `widths[i]` is sample `i`'s group width
    /// and `scores[i * n_heads + h]` its residual `y_i − q̂_h(x_i)`.
    /// Deterministic: scores sort by `total_cmp`, ties keep no state.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn from_scores(taus: &[f64], widths: &[usize], scores: &[f64]) -> StratifiedConformal {
        let n_heads = taus.len();
        assert!(n_heads > 0, "need at least one head");
        assert!(!widths.is_empty(), "cannot calibrate on an empty slice");
        assert_eq!(scores.len(), widths.len() * n_heads, "one score per sample per head");
        let quantiles = |rows: &[usize]| -> Vec<f64> {
            let mut col: Vec<f64> = Vec::with_capacity(rows.len());
            taus.iter()
                .enumerate()
                .map(|(h, &tau)| {
                    col.clear();
                    col.extend(rows.iter().map(|&r| scores[r * n_heads + h]));
                    col.sort_by(|a, b| a.total_cmp(b));
                    col[conformal_rank(col.len(), tau) - 1]
                })
                .collect()
        };
        let all_rows: Vec<usize> = (0..widths.len()).collect();
        let pooled = quantiles(&all_rows);
        let mut counts = Vec::with_capacity(MAX_COLOCATED);
        let mut corrections = Vec::with_capacity(MAX_COLOCATED);
        for w in 1..=MAX_COLOCATED {
            let rows: Vec<usize> = (0..widths.len())
                .filter(|&r| widths[r].clamp(1, MAX_COLOCATED) == w)
                .collect();
            counts.push(rows.len());
            corrections.push(if rows.len() >= MIN_STRATUM {
                quantiles(&rows)
            } else {
                pooled.clone()
            });
        }
        StratifiedConformal {
            taus: taus.to_vec(),
            corrections,
            counts,
            pooled,
        }
    }

    /// Calibrate `heads` on a held-out slice: scores are the residuals of
    /// each head's (monotone-rearranged) prediction, stratified by each
    /// row's group width.
    pub fn fit(heads: &QuantileMlp, calib: &Dataset) -> StratifiedConformal {
        assert!(!calib.is_empty(), "cannot calibrate on an empty slice");
        let n = calib.len();
        let n_heads = heads.n_heads();
        let mut xs = Vec::with_capacity(n * calib.dim());
        for x in &calib.x {
            xs.extend_from_slice(x);
        }
        let mut preds = Vec::with_capacity(n * n_heads);
        heads.predict_quantiles_into(&xs, n, &mut preds);
        let widths: Vec<usize> = calib.x.iter().map(|x| width_of_row(x)).collect();
        let mut scores = Vec::with_capacity(n * n_heads);
        for r in 0..n {
            let y = calib.y[r];
            for &q in &preds[r * n_heads..(r + 1) * n_heads] {
                scores.push(y - q);
            }
        }
        StratifiedConformal::from_scores(heads.taus(), &widths, &scores)
    }

    /// The heads' quantile levels, ascending.
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// Additive correction for group width `width` (clamped), head `head`.
    pub fn correction(&self, width: usize, head: usize) -> f64 {
        self.corrections[width.clamp(1, MAX_COLOCATED) - 1][head]
    }

    /// Calibration points in the stratum for `width`.
    pub fn stratum_count(&self, width: usize) -> usize {
        self.counts[width.clamp(1, MAX_COLOCATED) - 1]
    }

    /// Pooled (all-widths) correction for `head`.
    pub fn pooled_correction(&self, head: usize) -> f64 {
        self.pooled[head]
    }

    /// Rebuild from persisted parts (see `persist`).
    pub fn from_parts(
        taus: Vec<f64>,
        counts: Vec<usize>,
        corrections: Vec<Vec<f64>>,
        pooled: Vec<f64>,
    ) -> Result<StratifiedConformal, String> {
        if taus.is_empty() {
            return Err("no heads".into());
        }
        if counts.len() != MAX_COLOCATED || corrections.len() != MAX_COLOCATED {
            return Err("stratum table has wrong width count".into());
        }
        if pooled.len() != taus.len() || corrections.iter().any(|c| c.len() != taus.len()) {
            return Err("correction row width does not match head count".into());
        }
        Ok(StratifiedConformal {
            taus,
            corrections,
            counts,
            pooled,
        })
    }
}

thread_local! {
    /// Per-thread scratch for the heads' raw quantiles inside the batched
    /// upper-bound entry points (keeps them allocation-free once warm,
    /// like the mean model's workspace).
    static QUANTILE_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Quantile heads plus their split-conformal calibration table, exposed as
/// a [`LatencyModel`] that predicts the **calibrated upper bound** at one
/// chosen level — the certifier the scheduler's Eq. 2 feasibility check
/// consumes in conformal mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformalModel {
    heads: QuantileMlp,
    conf: StratifiedConformal,
    /// Head index the [`LatencyModel`] entry points certify at.
    cert_head: usize,
}

impl ConformalModel {
    /// Calibrate `heads` on the held-out `calib` slice and certify at
    /// miscoverage `alpha` (the head whose level is closest to
    /// `1 − alpha`).
    pub fn calibrate(heads: QuantileMlp, calib: &Dataset, alpha: f64) -> ConformalModel {
        let conf = StratifiedConformal::fit(&heads, calib);
        let cert_head = head_for_alpha(heads.taus(), alpha);
        ConformalModel {
            heads,
            conf,
            cert_head,
        }
    }

    /// Reassemble from persisted parts.
    pub fn from_parts(
        heads: QuantileMlp,
        conf: StratifiedConformal,
        alpha: f64,
    ) -> Result<ConformalModel, String> {
        if heads.taus() != conf.taus() {
            return Err("head levels do not match calibration table".into());
        }
        let cert_head = head_for_alpha(heads.taus(), alpha);
        Ok(ConformalModel {
            heads,
            conf,
            cert_head,
        })
    }

    /// The same model certifying at a different miscoverage level (shares
    /// the heads and calibration table; only the certified head changes).
    pub fn with_alpha(&self, alpha: f64) -> ConformalModel {
        ConformalModel {
            heads: self.heads.clone(),
            conf: self.conf.clone(),
            cert_head: head_for_alpha(self.heads.taus(), alpha),
        }
    }

    /// Miscoverage level of the certified head (`1 − τ`).
    pub fn alpha(&self) -> f64 {
        1.0 - self.heads.taus()[self.cert_head]
    }

    /// The underlying quantile heads.
    pub fn heads(&self) -> &QuantileMlp {
        &self.heads
    }

    /// The calibration table.
    pub fn conformal(&self) -> &StratifiedConformal {
        &self.conf
    }

    /// Batched certified upper bounds at the configured level: `n` feature
    /// rows packed in `xs`, one bound per row appended to `out` (cleared
    /// first). One heads forward per call; corrections are a table lookup
    /// per row. Bounds are monotone in the head level (running max across
    /// calibrated heads) and clamped non-negative.
    pub fn predict_upper_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        let h = self.heads.n_heads();
        let dim = xs.len() / n;
        QUANTILE_SCRATCH.with(|cell| {
            let q = &mut *cell.borrow_mut();
            self.heads.predict_quantiles_into(xs, n, q);
            out.reserve(n);
            for r in 0..n {
                let width = width_of_row(&xs[r * dim..(r + 1) * dim]);
                let mut hi = f64::NEG_INFINITY;
                for head in 0..=self.cert_head {
                    let u = (q[r * h + head] + self.conf.correction(width, head)).max(0.0);
                    hi = hi.max(u);
                }
                out.push(hi);
            }
        });
    }

    /// Calibrated upper bounds for **every** head of one feature row,
    /// monotone in the level (running max) and clamped non-negative.
    pub fn upper_bounds_one(&self, x: &[f64]) -> Vec<f64> {
        let h = self.heads.n_heads();
        let q = self.heads.predict_quantiles_one(x);
        let width = width_of_row(x);
        let mut out = Vec::with_capacity(h);
        let mut hi = f64::NEG_INFINITY;
        for (head, &raw) in q.iter().enumerate() {
            let u = (raw + self.conf.correction(width, head)).max(0.0);
            hi = hi.max(u);
            out.push(hi);
        }
        out
    }
}

/// The head whose level is closest to `1 − alpha`.
fn head_for_alpha(taus: &[f64], alpha: f64) -> usize {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha} outside (0, 1)");
    let target = 1.0 - alpha;
    let mut best = 0;
    let mut best_gap = f64::INFINITY;
    for (h, &tau) in taus.iter().enumerate() {
        let gap = (tau - target).abs();
        if gap < best_gap {
            best_gap = gap;
            best = h;
        }
    }
    best
}

impl LatencyModel for ConformalModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.upper_bounds_one(x)[self.cert_head]
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        self.predict_upper_into(xs, n, out);
    }

    fn name(&self) -> &'static str {
        "conformal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use proptest::prelude::*;
    use workload::SeededRng;

    #[test]
    fn conformal_rank_matches_textbook() {
        // n = 19, tau = 0.95: ceil(20 * 0.95) = 19.
        assert_eq!(conformal_rank(19, 0.95), 19);
        // Clamped when the level needs more points than the slice has.
        assert_eq!(conformal_rank(5, 0.99), 5);
        assert_eq!(conformal_rank(1, 0.5), 1);
    }

    #[test]
    fn width_reads_presence_bits() {
        let mut x = vec![0.0; MODEL_SLOT_BASE + 16];
        assert_eq!(width_of_row(&x), 1);
        x[0] = 1.0;
        assert_eq!(width_of_row(&x), 1);
        x[3] = 1.0;
        x[5] = 1.0;
        assert_eq!(width_of_row(&x), 3);
        // Short synthetic rows collapse to the solo stratum.
        assert_eq!(width_of_row(&[0.7]), 1);
    }

    #[test]
    fn thin_strata_fall_back_to_pooled() {
        // 100 width-2 samples, 3 width-1 samples: the solo stratum is too
        // thin to calibrate alone and must reuse the pooled corrections.
        let mut rng = SeededRng::new(7);
        let mut widths = Vec::new();
        let mut scores = Vec::new();
        for i in 0..103 {
            widths.push(if i < 3 { 1 } else { 2 });
            // The thin stratum's scores sit far above the fat one's, so its
            // own quantile would differ from the pooled one if it were
            // (wrongly) trusted.
            scores.push(if i < 3 { 100.0 + rng.normal() } else { rng.normal() });
        }
        let conf = StratifiedConformal::from_scores(&[0.95], &widths, &scores);
        assert_eq!(conf.stratum_count(1), 3);
        assert_eq!(conf.correction(1, 0), conf.pooled_correction(0));
        assert_ne!(conf.correction(2, 0), conf.pooled_correction(0));
    }

    #[test]
    fn wider_residuals_earn_wider_corrections() {
        // Solo scores 4× more dispersed than multi-way scores — the solo
        // stratum's correction must come out larger (the OOD motivation).
        let mut rng = SeededRng::new(11);
        let mut widths = Vec::new();
        let mut scores = Vec::new();
        for _ in 0..400 {
            let solo = 4.0 * rng.normal();
            widths.push(1);
            scores.extend_from_slice(&[solo, solo]);
            let multi = rng.normal();
            widths.push(3);
            scores.extend_from_slice(&[multi, multi]);
        }
        let conf = StratifiedConformal::from_scores(&[0.9, 0.95], &widths, &scores);
        for h in 0..2 {
            assert!(
                conf.correction(1, h) > conf.correction(3, h),
                "head {h}: solo {} vs multi {}",
                conf.correction(1, h),
                conf.correction(3, h)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Split-conformal coverage: calibrating the p95 correction on one
        /// slice of exchangeable scores covers a held-out slice at ~95%,
        /// within a finite-sample tolerance band — and the corrections are
        /// monotone in the level (p90 ≤ p95 ≤ p99 quantiles of one score
        /// distribution).
        #[test]
        fn coverage_lands_in_tolerance_band(
            seed in 0u64..512,
            n_calib in 500usize..900,
            n_test in 1000usize..1500,
            scale in 0.5f64..20.0,
            shift in -5.0f64..5.0,
        ) {
            let mut rng = SeededRng::new(seed);
            let taus = [0.90, 0.95, 0.99];
            let mut widths = Vec::with_capacity(n_calib);
            let mut scores = Vec::with_capacity(n_calib * 3);
            for _ in 0..n_calib {
                widths.push(1 + (rng.f64() * 4.0) as usize);
                let s = shift + scale * rng.normal();
                // Same underlying score for every head — the heads of a
                // real model differ, but the correction math only sees one
                // column at a time.
                scores.extend_from_slice(&[s, s, s]);
            }
            let conf = StratifiedConformal::from_scores(&taus, &widths, &scores);
            // Monotone in the level, per stratum and pooled.
            for w in 1..=MAX_COLOCATED {
                prop_assert!(conf.correction(w, 0) <= conf.correction(w, 1));
                prop_assert!(conf.correction(w, 1) <= conf.correction(w, 2));
            }
            prop_assert!(conf.pooled_correction(0) <= conf.pooled_correction(1));
            // Held-out coverage of the p95 correction, per sampled width.
            let mut covered = 0usize;
            for _ in 0..n_test {
                let w = 1 + (rng.f64() * 4.0) as usize;
                let s = shift + scale * rng.normal();
                if s <= conf.correction(w, 1) {
                    covered += 1;
                }
            }
            let frac = covered as f64 / n_test as f64;
            prop_assert!(
                (0.905..=0.995).contains(&frac),
                "p95 coverage {} outside tolerance band",
                frac
            );
        }
    }

    /// End-to-end: train heads on synthetic noisy data, calibrate on a
    /// held-out slice, check held-out coverage of the certified p95 bound
    /// and monotonicity of the calibrated bounds across alphas.
    #[test]
    fn calibrated_model_covers_held_out_slice() {
        let mut rng = SeededRng::new(21);
        let mut d = Dataset::new();
        for _ in 0..4000 {
            let x = rng.f64();
            let y = 20.0 + 10.0 * x + (1.0 + 2.0 * x) * rng.normal();
            d.push(vec![x], y.max(0.1));
        }
        let mut split_rng = SeededRng::new(5);
        let (fit, rest) = d.split(0.5, &mut split_rng);
        let (calib, test) = rest.split(0.5, &mut split_rng);
        let heads = QuantileMlp::train(
            &fit,
            &MlpConfig {
                epochs: 40,
                ..MlpConfig::default()
            },
            &CERT_TAUS,
        );
        let model = ConformalModel::calibrate(heads, &calib, 0.05);
        assert_eq!(model.alpha(), 1.0 - 0.95);
        let covered = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(x, &y)| model.predict_one(x) >= y)
            .count();
        let frac = covered as f64 / test.len() as f64;
        assert!((0.90..=1.0).contains(&frac), "p95 coverage {frac}");
        // Calibrated bounds are monotone in the level.
        for i in 0..20 {
            let x = [i as f64 / 20.0];
            let b = model.upper_bounds_one(&x);
            assert!(b[0] <= b[1] && b[1] <= b[2], "bounds {b:?}");
            assert_eq!(model.with_alpha(0.10).predict_one(&x), b[0]);
            assert_eq!(model.with_alpha(0.05).predict_one(&x), b[1]);
            assert_eq!(model.with_alpha(0.01).predict_one(&x), b[2]);
        }
        // The batched entry point matches the scalar path.
        let xs: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let mut out = Vec::new();
        model.predict_upper_into(&xs, 16, &mut out);
        for (i, &u) in out.iter().enumerate() {
            assert_eq!(u, model.predict_one(&[i as f64 / 16.0]));
        }
    }
}
