//! Ridge linear regression — the paper's "LR" baseline predictor (§5.5).
//!
//! Solved in closed form via the normal equations `(XᵀX + λI) w = Xᵀy`
//! with a bias column, using an in-house Gaussian elimination with partial
//! pivoting (the feature dimension is 23, so a dense solve is trivial).

use crate::dataset::Dataset;
use crate::LatencyModel;

/// A fitted ridge regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// Weights, one per feature.
    w: Vec<f64>,
    /// Intercept.
    b: f64,
}

impl LinearRegression {
    /// Fit with ridge penalty `lambda` (not applied to the bias).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, lambda: f64) -> LinearRegression {
        assert!(!data.is_empty(), "cannot fit an empty dataset");
        let d = data.dim();
        let n = d + 1; // bias column appended
        // Build A = XᵀX + λI and rhs = Xᵀy over the augmented features.
        let mut a = vec![0.0; n * n];
        let mut rhs = vec![0.0; n];
        for (x, &y) in data.x.iter().zip(&data.y) {
            for i in 0..n {
                let xi = if i < d { x[i] } else { 1.0 };
                rhs[i] += xi * y;
                for j in i..n {
                    let xj = if j < d { x[j] } else { 1.0 };
                    a[i * n + j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle and add the ridge term.
        for i in 0..n {
            for j in 0..i {
                a[i * n + j] = a[j * n + i];
            }
            if i < d {
                a[i * n + i] += lambda;
            }
        }
        let sol = solve(&mut a, &mut rhs, n);
        LinearRegression {
            w: sol[..d].to_vec(),
            b: sol[d],
        }
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.b
    }
}

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for j in 0..n {
                a.swap(col * n + j, piv * n + j);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        assert!(
            diag.abs() > 1e-12,
            "singular system (add ridge regularisation)"
        );
        for r in (col + 1)..n {
            let f = a[r * n + col] / diag;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                a[r * n + j] -= f * a[col * n + j];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in (i + 1)..n {
            acc -= a[i * n + j] * x[j];
        }
        x[i] = acc / a[i * n + i];
    }
    x
}

impl LatencyModel for LinearRegression {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut acc = self.b;
        for (wi, xi) in self.w.iter().zip(x) {
            acc += wi * xi;
        }
        acc.max(0.0)
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        assert_eq!(xs.len(), n * self.w.len(), "feature dimension mismatch");
        // One batch × dim mat-vec against the weight vector: y = X·w + b.
        for row in xs.chunks_exact(self.w.len()) {
            let mut acc = self.b;
            for (wi, xi) in self.w.iter().zip(row) {
                acc += wi * xi;
            }
            out.push(acc.max(0.0));
        }
    }

    fn name(&self) -> &'static str {
        "Linear Regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::SeededRng;

    #[test]
    fn recovers_exact_linear_function() {
        let mut rng = SeededRng::new(1);
        let mut d = Dataset::new();
        for _ in 0..500 {
            let x = vec![rng.f64(), rng.f64(), rng.f64()];
            let y = 5.0 + 2.0 * x[0] - 3.0 * x[1] + 0.5 * x[2];
            d.push(x, y);
        }
        let lr = LinearRegression::fit(&d, 1e-9);
        assert!((lr.intercept() - 5.0).abs() < 1e-6);
        assert!((lr.weights()[0] - 2.0).abs() < 1e-6);
        assert!((lr.weights()[1] + 3.0).abs() < 1e-6);
        assert!((lr.weights()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let mut rng = SeededRng::new(2);
        let mut d = Dataset::new();
        for _ in 0..100 {
            let x = vec![rng.f64()];
            d.push(x.clone(), 10.0 * x[0]);
        }
        let loose = LinearRegression::fit(&d, 1e-9);
        let tight = LinearRegression::fit(&d, 100.0);
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn underdetermined_with_ridge_is_stable() {
        // 2 samples, 5 features: singular without the ridge term.
        let mut d = Dataset::new();
        d.push(vec![1.0, 0.0, 0.0, 0.0, 0.0], 1.0);
        d.push(vec![0.0, 1.0, 0.0, 0.0, 0.0], 2.0);
        let lr = LinearRegression::fit(&d, 1e-3);
        assert!(lr.predict_one(&[1.0, 0.0, 0.0, 0.0, 0.0]).is_finite());
    }

    #[test]
    fn cannot_fit_nonlinearity() {
        // The reason MLP wins in Fig. 10: y = x0^2 has high linear error.
        let mut rng = SeededRng::new(3);
        let mut d = Dataset::new();
        for _ in 0..1000 {
            let x = rng.range_f64(0.0, 2.0);
            d.push(vec![x], 10.0 * x * x);
        }
        let lr = LinearRegression::fit(&d, 1e-6);
        let mape = crate::eval::mape(&lr, &d);
        assert!(mape > 0.15, "mape {mape}");
    }
}
