//! Offline profiling of operator groups (§5.2, §5.4).
//!
//! For each sampled [`GroupSpec`] the profiler runs the group on the GPU
//! simulator `runs` times with different noise seeds and records the mean
//! and standard deviation of the group latency — exactly the 42 000 × 100
//! measurement campaign of §5.2, scaled by configuration. Groups are
//! profiled in parallel with rayon (the measurement legs are independent).

use crate::features::GroupSpec;
use dnn_models::ModelLibrary;
use gpu_sim::{run_group, GpuSpec, NoiseModel};
use rayon::prelude::*;
use workload::fork_seed;

/// One profiled sample: the group plus its measured latency statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledGroup {
    /// The operator group.
    pub spec: GroupSpec,
    /// Mean group latency over all runs, ms.
    pub mean_ms: f64,
    /// Standard deviation of the group latency across runs, ms.
    pub std_ms: f64,
}

/// Profile one group: `runs` measurements with seeds forked from `seed`.
pub fn profile_group(
    spec: &GroupSpec,
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    seed: u64,
    runs: usize,
) -> ProfiledGroup {
    assert!(runs > 0);
    let streams = spec.streams(lib);
    let samples: Vec<f64> = (0..runs)
        .map(|r| run_group(gpu, noise, fork_seed(seed, r as u64), &streams).total_ms)
        .collect();
    let n = runs as f64;
    let mean = samples.iter().sum::<f64>() / n;
    // Centered two-pass variance: the naive sum-of-squares form loses all
    // significant digits when the spread is tiny relative to the mean
    // (noise-free runs must report exactly zero).
    let var = samples.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
    ProfiledGroup {
        spec: spec.clone(),
        mean_ms: mean,
        std_ms: var.sqrt(),
    }
}

/// Profile many groups in parallel.
pub fn profile_groups(
    specs: &[GroupSpec],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    seed: u64,
    runs: usize,
) -> Vec<ProfiledGroup> {
    specs
        .par_iter()
        .enumerate()
        .map(|(i, s)| profile_group(s, lib, gpu, noise, fork_seed(seed, i as u64), runs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_groups;
    use dnn_models::ModelId;

    #[test]
    fn profile_statistics_reasonable() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let specs = sample_groups(&[ModelId::ResNet50, ModelId::Bert], 10, &lib, 3);
        let profiled = profile_groups(&specs, &lib, &gpu, &NoiseModel::calibrated(), 11, 20);
        assert_eq!(profiled.len(), 10);
        for p in &profiled {
            assert!(p.mean_ms > 0.0);
            assert!(p.std_ms >= 0.0);
            // §5.2: std is a few percent of the mean.
            assert!(p.std_ms / p.mean_ms < 0.12, "cv {}", p.std_ms / p.mean_ms);
        }
    }

    #[test]
    fn noise_free_profiling_has_zero_std() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let specs = sample_groups(&[ModelId::Vgg16], 3, &lib, 5);
        for p in profile_groups(&specs, &lib, &gpu, &NoiseModel::disabled(), 1, 5) {
            assert!(p.std_ms < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        let specs = sample_groups(&[ModelId::ResNet101, ModelId::Vgg19], 4, &lib, 2);
        let a = profile_groups(&specs, &lib, &gpu, &NoiseModel::calibrated(), 8, 10);
        let b = profile_groups(&specs, &lib, &gpu, &NoiseModel::calibrated(), 8, 10);
        assert_eq!(a, b);
    }
}
