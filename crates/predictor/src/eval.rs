//! Prediction-error metrics: MAPE (Eq. 1) and k-fold cross-validation.

use crate::dataset::Dataset;
use crate::LatencyModel;
use workload::SeededRng;

/// Mean absolute percentage error of `model` on `data` (the paper's Eq. 1).
pub fn mape<M: LatencyModel + ?Sized>(model: &M, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut acc = 0.0;
    for (x, &y) in data.x.iter().zip(&data.y) {
        let p = model.predict_one(x);
        acc += (p - y).abs() / y.abs().max(1e-9);
    }
    acc / data.len() as f64
}

/// K-fold cross-validation: train with `fit` on each fold's training split
/// and return the mean test MAPE (the "Cross Validation" bar of Fig. 10).
pub fn kfold_mape<M, F>(data: &Dataset, k: usize, seed: u64, fit: F) -> f64
where
    M: LatencyModel,
    F: Fn(&Dataset) -> M + Sync,
{
    let mut rng = SeededRng::new(seed);
    let folds = data.kfold(k, &mut rng);
    let total: f64 = folds
        .iter()
        .map(|(train, test)| mape(&fit(train), test))
        .sum();
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant predictor for testing the metric itself.
    struct Constant(f64);
    impl LatencyModel for Constant {
        fn predict_one(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "const"
        }
    }

    #[test]
    fn mape_of_perfect_predictor_is_zero() {
        let mut d = Dataset::new();
        d.push(vec![0.0], 5.0);
        d.push(vec![0.0], 5.0);
        assert_eq!(mape(&Constant(5.0), &d), 0.0);
    }

    #[test]
    fn mape_scales_with_error() {
        let mut d = Dataset::new();
        d.push(vec![0.0], 10.0);
        // Predicting 12 on a target of 10 = 20% error.
        assert!((mape(&Constant(12.0), &d) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn kfold_runs_all_folds() {
        let mut d = Dataset::new();
        for i in 0..30 {
            d.push(vec![i as f64], 10.0);
        }
        let err = kfold_mape(&d, 5, 1, |_train| Constant(11.0));
        assert!((err - 0.1).abs() < 1e-12);
    }
}
