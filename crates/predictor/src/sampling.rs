//! Instance-based sampling of operator groups (Fig. 9, §5.4).
//!
//! Naively sampling all `(op_start, op_end, bs, seqlen)^k` combinations
//! explodes; the paper instead samples only groups that *can occur* under
//! Abacus's two scheduling invariants:
//!
//! 1. at least one query completes in every group (the query whose QoS the
//!    round guarantees runs to its last operator), and
//! 2. a newly-arrived query enters a group at its first operator.
//!
//! [`sample_group`] draws one such group for a given co-location set:
//! it picks a non-empty subset of "completing" models (`op_end = n`), an
//! independent subset of "new" models (`op_start = 0`), randomises the
//! remaining endpoints, and randomises each query's input per Table 1.

use crate::features::{GroupEntry, GroupSpec};
use dnn_models::{ModelId, ModelLibrary};
use workload::SeededRng;

/// Draw one instance-based operator-group sample over `models`.
///
/// `models` must contain 1–4 distinct models.
pub fn sample_group(models: &[ModelId], lib: &ModelLibrary, rng: &mut SeededRng) -> GroupSpec {
    assert!(!models.is_empty() && models.len() <= crate::features::MAX_COLOCATED);
    // Step 1: at least one model completes in this group.
    let mut completes = vec![false; models.len()];
    completes[rng.index(models.len())] = true;
    for c in completes.iter_mut() {
        if rng.bool(0.5) {
            *c = true;
        }
    }
    // Step 2: an independent subset is newly arrived (starts at op 0).
    let news: Vec<bool> = models.iter().map(|_| rng.bool(0.5)).collect();

    let entries = models
        .iter()
        .zip(completes.iter().zip(news.iter()))
        .map(|(&model, (&completed, &new))| {
            let input = lib.random_input(model, rng);
            let n = lib.graph(model, input).len();
            // Step 3: randomise whatever steps 1–2 left free.
            let op_start = if new { 0 } else { rng.index(n) };
            let op_end = if completed {
                n
            } else {
                // At least one operator: end in (start, n].
                op_start + 1 + rng.index(n - op_start)
            };
            GroupEntry {
                model,
                op_start,
                op_end,
                input,
            }
        })
        .collect();
    GroupSpec::new(entries, lib)
}

/// Draw `count` samples for one co-location set.
pub fn sample_groups(
    models: &[ModelId],
    count: usize,
    lib: &ModelLibrary,
    seed: u64,
) -> Vec<GroupSpec> {
    let mut rng = SeededRng::new(seed);
    (0..count).map(|_| sample_group(models, lib, &mut rng)).collect()
}

/// All `C(7,2) = 21` pair-wise co-location sets over the paper's Table 1
/// models, in the figure order. (The LSTM extension model is excluded —
/// the paper's evaluation serves only the seven Table 1 models.)
pub fn all_pairs() -> Vec<[ModelId; 2]> {
    let models = ModelId::PAPER_MODELS;
    let mut out = Vec::with_capacity(21);
    for i in 0..models.len() {
        for j in (i + 1)..models.len() {
            out.push([models[i], models[j]]);
        }
    }
    out
}

/// The five triplet/quadruplet deployments of §7.4 (Figs. 18–19).
pub fn paper_multiway_sets() -> Vec<Vec<ModelId>> {
    use ModelId::*;
    vec![
        vec![ResNet101, ResNet152, Vgg19, Bert],
        vec![ResNet101, ResNet152, Vgg19],
        vec![ResNet101, ResNet152, Bert],
        vec![ResNet101, Vgg19, Bert],
        vec![ResNet152, Vgg19, Bert],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_enumeration() {
        let pairs = all_pairs();
        assert_eq!(pairs.len(), 21);
        // First and last match the paper's figure ordering.
        assert_eq!(pairs[0], [ModelId::ResNet50, ModelId::ResNet101]);
        assert_eq!(pairs[20], [ModelId::Vgg19, ModelId::Bert]);
    }

    #[test]
    fn samples_respect_invariants() {
        let lib = ModelLibrary::new();
        let models = [ModelId::ResNet50, ModelId::Bert];
        let groups = sample_groups(&models, 500, &lib, 42);
        for g in &groups {
            assert_eq!(g.entries.len(), 2);
            // Invariant 1: at least one query completes.
            let any_complete = g.entries.iter().any(|e| {
                e.op_end == lib.graph(e.model, e.input).len()
            });
            assert!(any_complete, "{g:?}");
            // Every entry schedules at least one operator.
            assert!(g.entries.iter().all(|e| !e.is_empty()));
        }
        // Coverage: both "new" and "resumed" starts occur.
        assert!(groups.iter().any(|g| g.entries[0].op_start == 0));
        assert!(groups.iter().any(|g| g.entries[0].op_start > 0));
    }

    #[test]
    fn inputs_cover_table1() {
        let lib = ModelLibrary::new();
        let groups = sample_groups(&[ModelId::Bert], 400, &lib, 7);
        let mut batches = std::collections::HashSet::new();
        let mut seqs = std::collections::HashSet::new();
        for g in &groups {
            batches.insert(g.entries[0].input.batch);
            seqs.insert(g.entries[0].input.seq);
        }
        assert_eq!(batches.len(), 4);
        assert_eq!(seqs.len(), 4);
    }

    #[test]
    fn sampling_is_deterministic() {
        let lib = ModelLibrary::new();
        let models = [ModelId::Vgg16, ModelId::InceptionV3];
        let a = sample_groups(&models, 50, &lib, 9);
        let b = sample_groups(&models, 50, &lib, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn quadruplet_sampling_works() {
        let lib = ModelLibrary::new();
        let sets = paper_multiway_sets();
        assert_eq!(sets.len(), 5);
        assert_eq!(sets[0].len(), 4);
        let g = sample_groups(&sets[0], 20, &lib, 1);
        assert!(g.iter().all(|g| g.entries.len() == 4));
    }
}
