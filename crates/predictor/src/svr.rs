//! Linear ε-insensitive support vector regression — the paper's "SVM"
//! baseline predictor (§5.5, LIBSVM in the original).
//!
//! Trained in the primal with stochastic sub-gradient descent on
//!
//! ```text
//! L(w, b) = λ/2 ‖w‖² + (1/n) Σ max(0, |w·xᵢ + b − yᵢ| − ε)
//! ```
//!
//! over standardised targets. Like LR it is fundamentally linear in the
//! Fig. 8 features, which is why both trail the MLP by 4–6× in Fig. 10.

use crate::dataset::Dataset;
use crate::LatencyModel;
use workload::SeededRng;

/// SVR hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SvrConfig {
    /// ε of the insensitive tube, in standardised-target units.
    pub epsilon: f64,
    /// Ridge coefficient λ.
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed 1/√t).
    pub lr: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            lambda: 1e-4,
            epochs: 60,
            lr: 0.05,
            seed: 0xC0DE,
        }
    }
}

/// A fitted linear ε-SVR.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvr {
    w: Vec<f64>,
    b: f64,
    y_mean: f64,
    y_std: f64,
}

impl LinearSvr {
    /// Fit on `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, cfg: &SvrConfig) -> LinearSvr {
        assert!(!data.is_empty(), "cannot fit an empty dataset");
        let d = data.dim();
        let y_mean = data.y_mean();
        let y_std = data.y_std();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut rng = SeededRng::new(cfg.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut t = 0usize;
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                t += 1;
                let lr = cfg.lr / (1.0 + (t as f64).sqrt() * 1e-2);
                let x = &data.x[i];
                let y = (data.y[i] - y_mean) / y_std;
                let pred: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                let err = pred - y;
                // Sub-gradient of the ε-insensitive loss.
                let g = if err > cfg.epsilon {
                    1.0
                } else if err < -cfg.epsilon {
                    -1.0
                } else {
                    0.0
                };
                for (wi, xi) in w.iter_mut().zip(x) {
                    *wi -= lr * (g * xi + cfg.lambda * *wi);
                }
                b -= lr * g;
            }
        }
        LinearSvr { w, b, y_mean, y_std }
    }
}

impl LatencyModel for LinearSvr {
    fn predict_one(&self, x: &[f64]) -> f64 {
        let z: f64 = self.w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + self.b;
        (z * self.y_std + self.y_mean).max(0.0)
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        assert_eq!(xs.len(), n * self.w.len(), "feature dimension mismatch");
        // One batch × dim mat-vec: z = X·w + b, destandardised per row.
        for row in xs.chunks_exact(self.w.len()) {
            let z: f64 = self.w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + self.b;
            out.push((z * self.y_std + self.y_mean).max(0.0));
        }
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_data_within_tube() {
        let mut rng = SeededRng::new(1);
        let mut d = Dataset::new();
        for _ in 0..800 {
            let x = vec![rng.f64(), rng.f64()];
            d.push(x.clone(), 20.0 + 8.0 * x[0] - 4.0 * x[1]);
        }
        let svr = LinearSvr::fit(&d, &SvrConfig::default());
        let mape = crate::eval::mape(&svr, &d);
        assert!(mape < 0.08, "mape {mape}");
    }

    #[test]
    fn deterministic() {
        let mut rng = SeededRng::new(2);
        let mut d = Dataset::new();
        for _ in 0..100 {
            let x = vec![rng.f64()];
            d.push(x.clone(), x[0] * 3.0);
        }
        let a = LinearSvr::fit(&d, &SvrConfig::default());
        let b = LinearSvr::fit(&d, &SvrConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn robust_to_outliers_vs_unregularised_target() {
        // The ε-insensitive loss should not chase a single wild outlier.
        let mut d = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x], 10.0 * x);
        }
        d.push(vec![0.5], 500.0); // outlier
        let svr = LinearSvr::fit(&d, &SvrConfig::default());
        let at_half = svr.predict_one(&[0.5]);
        assert!((at_half - 5.0).abs() < 2.0, "pred {at_half}");
    }

    #[test]
    fn predictions_non_negative() {
        let mut d = Dataset::new();
        d.push(vec![0.0], 1.0);
        d.push(vec![1.0], 2.0);
        let svr = LinearSvr::fit(&d, &SvrConfig::default());
        assert!(svr.predict_one(&[-50.0]) >= 0.0);
    }
}
