//! Co-location affinity analysis and service-group planning (§7.8).
//!
//! Profiling all `C(N,2)` pairs scales poorly; the paper's answer is to
//! analyse the profiling data once and then "divide [the N DNNs] into
//! several service groups of size k", deploying together only models that
//! actually benefit from overlap: "If the latency of the co-located DNN
//! models always equals that of sequential execution, Abacus does not
//! deploy them together" — e.g. (VGG16, VGG19) is avoided.
//!
//! [`overlap_affinity`] quantifies a pair's benefit as the mean ratio of
//! sequential execution time to measured group latency (1.0 = pure
//! time-sharing, ≥ ~1.3 = healthy overlap). [`plan_service_groups`]
//! greedily packs models into groups of size ≤ k, maximising intra-group
//! affinity and refusing groups whose members never overlap.

use crate::features::{GroupEntry, GroupSpec};
use crate::profiler::{profile_groups, ProfiledGroup};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use workload::SeededRng;

/// A pair's measured overlap benefit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairAffinity {
    /// The two models.
    pub pair: [ModelId; 2],
    /// Mean sequential-time ÷ group-latency over the profiled groups
    /// (≥ 1.0 up to the interference margin).
    pub gain: f64,
}

/// Affinity threshold below which a pair is considered overlap-hostile
/// ("always equals sequential execution" up to noise). §7.5 assesses this
/// *under peak load* — i.e. with maximum inputs — which is what
/// [`peak_affinity`] measures.
pub const NO_OVERLAP_GAIN: f64 = 1.15;

/// Compute a pair's overlap affinity from its profiled operator groups.
///
/// Only multi-entry groups are informative; single-entry samples are
/// skipped. Panics if no multi-entry group exists.
pub fn overlap_affinity(
    pair: [ModelId; 2],
    profiles: &[ProfiledGroup],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
) -> PairAffinity {
    let mut sum = 0.0;
    let mut n = 0usize;
    for p in profiles {
        if p.spec.entries.len() < 2 {
            continue;
        }
        sum += p.spec.sequential_ms(lib, gpu) / p.mean_ms.max(1e-9);
        n += 1;
    }
    assert!(n > 0, "no co-located groups profiled for {pair:?}");
    PairAffinity {
        pair,
        gain: sum / n as f64,
    }
}

/// Greedily partition `models` into service groups of size ≤ `k`.
///
/// Pairs with measured gain below [`NO_OVERLAP_GAIN`] are never placed in
/// the same group. Within that constraint the packer repeatedly grows the
/// group around the unassigned model with the best available partner.
pub fn plan_service_groups(
    models: &[ModelId],
    affinities: &[PairAffinity],
    k: usize,
) -> Vec<Vec<ModelId>> {
    assert!(k >= 1);
    let gain_of = |a: ModelId, b: ModelId| -> f64 {
        affinities
            .iter()
            .find(|p| (p.pair[0] == a && p.pair[1] == b) || (p.pair[0] == b && p.pair[1] == a))
            .map(|p| p.gain)
            .unwrap_or(1.0)
    };
    let mut unassigned: Vec<ModelId> = models.to_vec();
    let mut groups: Vec<Vec<ModelId>> = Vec::new();
    while let Some(seed) = unassigned.first().copied() {
        unassigned.retain(|&m| m != seed);
        let mut group = vec![seed];
        while group.len() < k {
            // Best unassigned candidate by mean affinity to the group,
            // subject to every pairwise gain clearing the threshold.
            let best = unassigned
                .iter()
                .filter(|&&cand| group.iter().all(|&g| gain_of(g, cand) >= NO_OVERLAP_GAIN))
                .map(|&cand| {
                    let mean: f64 = group.iter().map(|&g| gain_of(g, cand)).sum::<f64>()
                        / group.len() as f64;
                    (cand, mean)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((cand, _)) => {
                    unassigned.retain(|&m| m != cand);
                    group.push(cand);
                }
                None => break,
            }
        }
        groups.push(group);
    }
    groups
}

/// Measure a pair's overlap affinity under peak load: operator groups with
/// *maximum* inputs (batch 32, the longest sequences), random ranges with
/// at least one completing query — §7.5's "avoided under peak load" test.
pub fn peak_affinity(
    pair: [ModelId; 2],
    lib: &ModelLibrary,
    gpu: &GpuSpec,
    noise: &NoiseModel,
    samples: usize,
    runs: usize,
    seed: u64,
) -> PairAffinity {
    let mut rng = SeededRng::new(seed);
    let specs: Vec<GroupSpec> = (0..samples)
        .map(|_| {
            let entries = pair
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    let input = m.max_input();
                    let n = lib.graph(m, input).len();
                    // The first entry completes; the second gets a random
                    // range (mirrors the Fig. 9 invariants at peak inputs).
                    let (op_start, op_end) = if i == 0 {
                        (rng.index(n), n)
                    } else {
                        let s = rng.index(n);
                        (s, s + 1 + rng.index(n - s))
                    };
                    GroupEntry {
                        model: m,
                        op_start,
                        op_end,
                        input,
                    }
                })
                .collect();
            GroupSpec::new(entries, lib)
        })
        .collect();
    let profiles = profile_groups(&specs, lib, gpu, noise, seed ^ 0xAFF1, runs);
    overlap_affinity(pair, &profiles, lib, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::ModelLibrary;

    fn affinity_of(pair: [ModelId; 2]) -> f64 {
        let lib = ModelLibrary::new();
        let gpu = GpuSpec::a100();
        peak_affinity(pair, &lib, &gpu, &NoiseModel::calibrated(), 120, 3, 5).gain
    }

    #[test]
    fn vgg_pair_is_overlap_hostile_resnet_pair_is_not() {
        // The paper's exact example: (VGG16, VGG19) always ≈ sequential.
        let vgg = affinity_of([ModelId::Vgg16, ModelId::Vgg19]);
        let res = affinity_of([ModelId::ResNet50, ModelId::ResNet152]);
        assert!(vgg < NO_OVERLAP_GAIN, "vgg gain {vgg}");
        assert!(res > NO_OVERLAP_GAIN, "resnet gain {res}");
        assert!(res > vgg);
    }

    #[test]
    fn planner_separates_hostile_pairs() {
        use ModelId::*;
        let affinities = vec![
            PairAffinity { pair: [Vgg16, Vgg19], gain: 1.1 },
            PairAffinity { pair: [Vgg16, ResNet50], gain: 1.4 },
            PairAffinity { pair: [Vgg19, ResNet152], gain: 1.35 },
            PairAffinity { pair: [ResNet50, ResNet152], gain: 1.5 },
            PairAffinity { pair: [Vgg16, ResNet152], gain: 1.3 },
            PairAffinity { pair: [Vgg19, ResNet50], gain: 1.3 },
        ];
        let groups = plan_service_groups(&[Vgg16, Vgg19, ResNet50, ResNet152], &affinities, 2);
        for g in &groups {
            assert!(
                !(g.contains(&Vgg16) && g.contains(&Vgg19)),
                "hostile pair grouped: {groups:?}"
            );
        }
        // Every model assigned exactly once.
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn planner_respects_group_size() {
        use ModelId::*;
        let models = [ResNet50, ResNet101, ResNet152, InceptionV3, Bert];
        let affinities: Vec<PairAffinity> = models
            .iter()
            .enumerate()
            .flat_map(|(i, &a)| {
                models[i + 1..]
                    .iter()
                    .map(move |&b| PairAffinity { pair: [a, b], gain: 1.5 })
            })
            .collect();
        for k in 1..=4 {
            let groups = plan_service_groups(&models, &affinities, k);
            assert!(groups.iter().all(|g| g.len() <= k));
            assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), models.len());
        }
    }

    #[test]
    fn isolated_hostile_model_gets_own_group() {
        use ModelId::*;
        let affinities = vec![
            PairAffinity { pair: [Vgg16, Vgg19], gain: 1.0 },
        ];
        let groups = plan_service_groups(&[Vgg16, Vgg19], &affinities, 4);
        assert_eq!(groups.len(), 2);
    }
}
