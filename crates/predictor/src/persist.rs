//! Saving and loading trained MLP duration models.
//!
//! A serving node trains offline (§5.4: ~42 hours of profiling on the real
//! system) and loads the frozen model at start-up; §7.8 reports the model
//! occupies ≈ 14 kB. The format is a tiny self-describing text file —
//! header lines with dimensions and target scaling, then one parameter per
//! line — so the artifact is inspectable and diffable.

use crate::mlp::Mlp;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic first line of the format.
const MAGIC: &str = "abacus-mlp-v1";

/// Serialise an MLP to a string.
pub fn to_string(mlp: &Mlp) -> String {
    let (y_mean, y_std) = mlp.target_scaling();
    let dims = mlp.dims();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "));
    out.push('\n');
    out.push_str(&format!("{y_mean:e} {y_std:e}\n"));
    for p in mlp.raw_params() {
        out.push_str(&format!("{p:e}\n"));
    }
    out
}

/// Parse an MLP from the [`to_string`] format.
pub fn from_str(s: &str) -> Result<Mlp, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let dims: Vec<usize> = lines
        .next()
        .ok_or("missing dims line")?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad dim: {e}")))
        .collect::<Result<_, String>>()?;
    let scale_line = lines.next().ok_or("missing scaling line")?;
    let mut it = scale_line.split_whitespace();
    let y_mean: f64 = it
        .next()
        .ok_or("missing y_mean")?
        .parse()
        .map_err(|e| format!("bad y_mean: {e}"))?;
    let y_std: f64 = it
        .next()
        .ok_or("missing y_std")?
        .parse()
        .map_err(|e| format!("bad y_std: {e}"))?;
    let params: Vec<f64> = lines
        .map(|l| l.trim().parse().map_err(|e| format!("bad param: {e}")))
        .collect::<Result<_, String>>()?;
    Mlp::from_raw(&dims, &params, y_mean, y_std)
}

/// Save to a file, creating parent directories.
pub fn save(mlp: &Mlp, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(mlp).as_bytes())
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Mlp, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_str(&text)
}

/// Load a cached model from `path`, falling back to `build` on *any*
/// failure — missing file, bad magic, truncation, corrupt parameters. The
/// boolean reports whether the cache was hit, so callers can log and
/// decide whether to re-save.
pub fn load_or_else(path: impl AsRef<Path>, build: impl FnOnce() -> Mlp) -> (Mlp, bool) {
    match load(path) {
        Ok(m) => (m, true),
        Err(_) => (build(), false),
    }
}

/// Path of the sidecar holding the calibrated prediction-round latency for
/// the model at `model_path`: same stem, `.round_ms` extension.
pub fn round_ms_path(model_path: impl AsRef<Path>) -> PathBuf {
    model_path.as_ref().with_extension("round_ms")
}

/// Write the round-latency sidecar next to `model_path`, creating parent
/// directories.
pub fn save_round_ms(model_path: impl AsRef<Path>, round_ms: f64) -> io::Result<()> {
    let path = round_ms_path(model_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, format!("{round_ms}\n"))
}

/// Read the round-latency sidecar next to `model_path`. `None` unless the
/// file exists and parses to a finite positive number — a corrupt sidecar
/// degrades to recalibration, never to a poisoned config.
pub fn load_round_ms(model_path: impl AsRef<Path>) -> Option<f64> {
    fs::read_to_string(round_ms_path(model_path))
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::mlp::MlpConfig;
    use crate::LatencyModel;

    fn tiny_mlp() -> Mlp {
        let mut d = Dataset::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 1.0 - x], 5.0 + x);
        }
        Mlp::train(&d, &MlpConfig { epochs: 5, hidden: vec![8, 8], ..MlpConfig::default() })
    }

    #[test]
    fn string_roundtrip_is_exact() {
        let mlp = tiny_mlp();
        let text = to_string(&mlp);
        let back = from_str(&text).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(mlp.predict_one(&x), back.predict_one(&x));
    }

    #[test]
    fn file_roundtrip() {
        let mlp = tiny_mlp();
        let path = std::env::temp_dir().join("abacus_persist_test/model.mlp");
        save(&mlp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(mlp.predict_one(&[0.5, 0.5]), back.predict_one(&[0.5, 0.5]));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(from_str("nonsense").is_err());
        let mlp = tiny_mlp();
        let mut text = to_string(&mlp);
        text.push_str("1.0\n"); // extra parameter
        assert!(from_str(&text).is_err());
        let truncated: String = to_string(&mlp).lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(from_str(&truncated).is_err());
    }

    #[test]
    fn model_and_sidecar_roundtrip() {
        let mlp = tiny_mlp();
        let dir = std::env::temp_dir().join("abacus_persist_sidecar_test");
        let model_path = dir.join("model.mlp");
        save(&mlp, &model_path).unwrap();
        save_round_ms(&model_path, 0.0625).unwrap();
        assert_eq!(round_ms_path(&model_path), dir.join("model.round_ms"));
        let back = load(&model_path).unwrap();
        assert_eq!(mlp.predict_one(&[0.2, 0.8]), back.predict_one(&[0.2, 0.8]));
        assert_eq!(load_round_ms(&model_path), Some(0.0625));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_sidecar_degrades_to_none() {
        let dir = std::env::temp_dir().join("abacus_persist_badsidecar_test");
        let model_path = dir.join("model.mlp");
        // Missing sidecar.
        assert_eq!(load_round_ms(&model_path), None);
        // Unparsable, non-finite and non-positive values.
        for bad in ["garbage", "NaN", "inf", "-1.5", "0"] {
            save_round_ms(&model_path, 1.0).unwrap();
            std::fs::write(round_ms_path(&model_path), bad).unwrap();
            assert_eq!(load_round_ms(&model_path), None, "sidecar {bad:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_else_retrains_on_missing_or_corrupt_cache() {
        let dir = std::env::temp_dir().join("abacus_persist_load_or_else_test");
        let path = dir.join("model.mlp");
        let fresh = tiny_mlp();

        // Missing cache: build runs.
        let (m, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);
        assert_eq!(m, fresh);

        // Intact cache: build must not run.
        save(&fresh, &path).unwrap();
        let (m, cached) = load_or_else(&path, || unreachable!("cache was intact"));
        assert!(cached);
        assert_eq!(m.predict_one(&[0.4, 0.6]), fresh.predict_one(&[0.4, 0.6]));

        // Truncated cache: graceful retrain instead of a parse panic.
        let full = to_string(&fresh);
        let truncated: String = full.lines().take(8).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, truncated).unwrap();
        let (_, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);

        // Corrupted parameter line: same.
        let corrupted = full + "not-a-number\n";
        std::fs::write(&path, corrupted).unwrap();
        let (_, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);

        std::fs::remove_dir_all(&dir).ok();
    }
}
