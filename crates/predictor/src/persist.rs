//! Saving and loading trained MLP duration models.
//!
//! A serving node trains offline (§5.4: ~42 hours of profiling on the real
//! system) and loads the frozen model at start-up; §7.8 reports the model
//! occupies ≈ 14 kB. The format is a tiny self-describing text file —
//! header lines with dimensions and target scaling, then one parameter per
//! line — so the artifact is inspectable and diffable.

use crate::mlp::Mlp;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic first line of the format.
const MAGIC: &str = "abacus-mlp-v1";

/// Serialise an MLP to a string.
pub fn to_string(mlp: &Mlp) -> String {
    let (y_mean, y_std) = mlp.target_scaling();
    let dims = mlp.dims();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "));
    out.push('\n');
    out.push_str(&format!("{y_mean:e} {y_std:e}\n"));
    for p in mlp.raw_params() {
        out.push_str(&format!("{p:e}\n"));
    }
    out
}

/// Parse an MLP from the [`to_string`] format.
pub fn from_str(s: &str) -> Result<Mlp, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let dims: Vec<usize> = lines
        .next()
        .ok_or("missing dims line")?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad dim: {e}")))
        .collect::<Result<_, String>>()?;
    let scale_line = lines.next().ok_or("missing scaling line")?;
    let mut it = scale_line.split_whitespace();
    let y_mean: f64 = it
        .next()
        .ok_or("missing y_mean")?
        .parse()
        .map_err(|e| format!("bad y_mean: {e}"))?;
    let y_std: f64 = it
        .next()
        .ok_or("missing y_std")?
        .parse()
        .map_err(|e| format!("bad y_std: {e}"))?;
    let params: Vec<f64> = lines
        .map(|l| l.trim().parse().map_err(|e| format!("bad param: {e}")))
        .collect::<Result<_, String>>()?;
    Mlp::from_raw(&dims, &params, y_mean, y_std)
}

/// Save to a file, creating parent directories.
pub fn save(mlp: &Mlp, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(mlp).as_bytes())
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Mlp, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::mlp::MlpConfig;
    use crate::LatencyModel;

    fn tiny_mlp() -> Mlp {
        let mut d = Dataset::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 1.0 - x], 5.0 + x);
        }
        Mlp::train(&d, &MlpConfig { epochs: 5, hidden: vec![8, 8], ..MlpConfig::default() })
    }

    #[test]
    fn string_roundtrip_is_exact() {
        let mlp = tiny_mlp();
        let text = to_string(&mlp);
        let back = from_str(&text).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(mlp.predict_one(&x), back.predict_one(&x));
    }

    #[test]
    fn file_roundtrip() {
        let mlp = tiny_mlp();
        let path = std::env::temp_dir().join("abacus_persist_test/model.mlp");
        save(&mlp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(mlp.predict_one(&[0.5, 0.5]), back.predict_one(&[0.5, 0.5]));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(from_str("nonsense").is_err());
        let mlp = tiny_mlp();
        let mut text = to_string(&mlp);
        text.push_str("1.0\n"); // extra parameter
        assert!(from_str(&text).is_err());
        let truncated: String = to_string(&mlp).lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(from_str(&truncated).is_err());
    }
}
