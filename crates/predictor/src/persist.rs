//! Saving and loading trained MLP duration models.
//!
//! A serving node trains offline (§5.4: ~42 hours of profiling on the real
//! system) and loads the frozen model at start-up; §7.8 reports the model
//! occupies ≈ 14 kB. The format is a tiny self-describing text file —
//! header lines with dimensions and target scaling, then one parameter per
//! line — so the artifact is inspectable and diffable.

use crate::conformal::{ConformalModel, StratifiedConformal};
use crate::features::MAX_COLOCATED;
use crate::mlp::{Mlp, QuantileMlp};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic first line of the format.
const MAGIC: &str = "abacus-mlp-v1";

/// Magic first line of the quantile-heads format.
const QMAGIC: &str = "abacus-qmlp-v1";

/// Magic first line of the conformal-certifier format.
const CMAGIC: &str = "abacus-conf-v1";

/// Serialise an MLP to a string.
pub fn to_string(mlp: &Mlp) -> String {
    let (y_mean, y_std) = mlp.target_scaling();
    let dims = mlp.dims();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "));
    out.push('\n');
    out.push_str(&format!("{y_mean:e} {y_std:e}\n"));
    for p in mlp.raw_params() {
        out.push_str(&format!("{p:e}\n"));
    }
    out
}

/// Parse an MLP from the [`to_string`] format.
pub fn from_str(s: &str) -> Result<Mlp, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let dims: Vec<usize> = lines
        .next()
        .ok_or("missing dims line")?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad dim: {e}")))
        .collect::<Result<_, String>>()?;
    let scale_line = lines.next().ok_or("missing scaling line")?;
    let mut it = scale_line.split_whitespace();
    let y_mean: f64 = it
        .next()
        .ok_or("missing y_mean")?
        .parse()
        .map_err(|e| format!("bad y_mean: {e}"))?;
    let y_std: f64 = it
        .next()
        .ok_or("missing y_std")?
        .parse()
        .map_err(|e| format!("bad y_std: {e}"))?;
    let params: Vec<f64> = lines
        .map(|l| l.trim().parse().map_err(|e| format!("bad param: {e}")))
        .collect::<Result<_, String>>()?;
    Mlp::from_raw(&dims, &params, y_mean, y_std)
}

/// Save to a file, creating parent directories.
pub fn save(mlp: &Mlp, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    f.write_all(to_string(mlp).as_bytes())
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Mlp, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    from_str(&text)
}

/// Load a cached model from `path`, falling back to `build` on *any*
/// failure — missing file, bad magic, truncation, corrupt parameters. The
/// boolean reports whether the cache was hit, so callers can log and
/// decide whether to re-save.
pub fn load_or_else(path: impl AsRef<Path>, build: impl FnOnce() -> Mlp) -> (Mlp, bool) {
    match load(path) {
        Ok(m) => (m, true),
        Err(_) => (build(), false),
    }
}

/// Serialise quantile heads to a string: magic, dims, quantile levels,
/// target scaling, one parameter per line — the [`to_string`] layout plus
/// a taus line.
pub fn quantile_to_string(q: &QuantileMlp) -> String {
    let (y_mean, y_std) = q.target_scaling();
    let dims = q.dims();
    let mut out = String::new();
    out.push_str(QMAGIC);
    out.push('\n');
    out.push_str(&dims.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "));
    out.push('\n');
    out.push_str(&q.taus().iter().map(|t| format!("{t:e}")).collect::<Vec<_>>().join(" "));
    out.push('\n');
    out.push_str(&format!("{y_mean:e} {y_std:e}\n"));
    for p in q.raw_params() {
        out.push_str(&format!("{p:e}\n"));
    }
    out
}

/// Parse one whitespace-separated line of `f64`s.
fn parse_f64_line(line: &str, what: &str) -> Result<Vec<f64>, String> {
    line.split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad {what}: {e}")))
        .collect()
}

/// Parse quantile heads from the [`quantile_to_string`] format.
pub fn quantile_from_str(s: &str) -> Result<QuantileMlp, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(l) if l == QMAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let dims: Vec<usize> = lines
        .next()
        .ok_or("missing dims line")?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad dim: {e}")))
        .collect::<Result<_, String>>()?;
    let taus = parse_f64_line(lines.next().ok_or("missing taus line")?, "tau")?;
    let scaling = parse_f64_line(lines.next().ok_or("missing scaling line")?, "scaling")?;
    let [y_mean, y_std] = scaling[..] else {
        return Err("scaling line needs y_mean and y_std".into());
    };
    let params: Vec<f64> = lines
        .map(|l| l.trim().parse().map_err(|e| format!("bad param: {e}")))
        .collect::<Result<_, String>>()?;
    QuantileMlp::from_raw(&dims, &params, y_mean, y_std, taus)
}

/// Save quantile heads to a file, creating parent directories.
pub fn save_quantile(q: &QuantileMlp, path: impl AsRef<Path>) -> io::Result<()> {
    write_artifact(path.as_ref(), &quantile_to_string(q))
}

/// Load quantile heads from a file.
pub fn load_quantile(path: impl AsRef<Path>) -> Result<QuantileMlp, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    quantile_from_str(&text)
}

/// [`load_or_else`] for quantile heads: any cache failure — missing file,
/// bad magic, truncation, corrupt levels — degrades to `build`.
pub fn load_quantile_or_else(
    path: impl AsRef<Path>,
    build: impl FnOnce() -> QuantileMlp,
) -> (QuantileMlp, bool) {
    match load_quantile(path) {
        Ok(q) => (q, true),
        Err(_) => (build(), false),
    }
}

/// Serialise a conformal certifier to a string: magic, certification
/// alpha, the per-width-stratum calibration table (counts, one correction
/// row per stratum, the pooled row), then the embedded quantile heads in
/// the [`quantile_to_string`] layout. One self-contained artifact — the
/// certifier never loads half-matched heads and table.
pub fn conformal_to_string(model: &ConformalModel) -> String {
    let conf = model.conformal();
    let mut out = String::new();
    out.push_str(CMAGIC);
    out.push('\n');
    out.push_str(&format!("{:e}\n", model.alpha()));
    let counts: Vec<String> = (1..=MAX_COLOCATED)
        .map(|w| conf.stratum_count(w).to_string())
        .collect();
    out.push_str(&counts.join(" "));
    out.push('\n');
    let n_heads = conf.taus().len();
    for w in 1..=MAX_COLOCATED {
        let row: Vec<String> = (0..n_heads).map(|h| format!("{:e}", conf.correction(w, h))).collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    let pooled: Vec<String> = (0..n_heads)
        .map(|h| format!("{:e}", conf.pooled_correction(h)))
        .collect();
    out.push_str(&pooled.join(" "));
    out.push('\n');
    out.push_str(&quantile_to_string(model.heads()));
    out
}

/// Parse a conformal certifier from the [`conformal_to_string`] format.
pub fn conformal_from_str(s: &str) -> Result<ConformalModel, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(l) if l == CMAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let alpha: f64 = lines
        .next()
        .ok_or("missing alpha line")?
        .trim()
        .parse()
        .map_err(|e| format!("bad alpha: {e}"))?;
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("alpha {alpha} outside (0, 1)"));
    }
    let counts: Vec<usize> = lines
        .next()
        .ok_or("missing counts line")?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| format!("bad count: {e}")))
        .collect::<Result<_, String>>()?;
    let mut corrections = Vec::with_capacity(MAX_COLOCATED);
    for w in 1..=MAX_COLOCATED {
        corrections.push(parse_f64_line(
            lines.next().ok_or_else(|| format!("missing correction row for width {w}"))?,
            "correction",
        )?);
    }
    let pooled = parse_f64_line(lines.next().ok_or("missing pooled row")?, "pooled correction")?;
    let rest: Vec<&str> = lines.collect();
    let heads = quantile_from_str(&rest.join("\n"))?;
    let conf = StratifiedConformal::from_parts(heads.taus().to_vec(), counts, corrections, pooled)?;
    ConformalModel::from_parts(heads, conf, alpha)
}

/// Save a conformal certifier to a file, creating parent directories.
pub fn save_conformal(model: &ConformalModel, path: impl AsRef<Path>) -> io::Result<()> {
    write_artifact(path.as_ref(), &conformal_to_string(model))
}

/// Load a conformal certifier from a file.
pub fn load_conformal(path: impl AsRef<Path>) -> Result<ConformalModel, String> {
    let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
    conformal_from_str(&text)
}

/// [`load_or_else`] for conformal certifiers: any cache failure degrades
/// to `build` (re-train + re-calibrate) instead of panicking.
pub fn load_conformal_or_else(
    path: impl AsRef<Path>,
    build: impl FnOnce() -> ConformalModel,
) -> (ConformalModel, bool) {
    match load_conformal(path) {
        Ok(m) => (m, true),
        Err(_) => (build(), false),
    }
}

/// Write one artifact file, creating parent directories.
fn write_artifact(path: &Path, text: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Path of the sidecar holding the calibrated prediction-round latency for
/// the model at `model_path`: same stem, `.round_ms` extension.
pub fn round_ms_path(model_path: impl AsRef<Path>) -> PathBuf {
    model_path.as_ref().with_extension("round_ms")
}

/// Write the round-latency sidecar next to `model_path`, creating parent
/// directories.
pub fn save_round_ms(model_path: impl AsRef<Path>, round_ms: f64) -> io::Result<()> {
    let path = round_ms_path(model_path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, format!("{round_ms}\n"))
}

/// Read the round-latency sidecar next to `model_path`. `None` unless the
/// file exists and parses to a finite positive number — a corrupt sidecar
/// degrades to recalibration, never to a poisoned config.
pub fn load_round_ms(model_path: impl AsRef<Path>) -> Option<f64> {
    fs::read_to_string(round_ms_path(model_path))
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::mlp::MlpConfig;
    use crate::LatencyModel;

    fn tiny_mlp() -> Mlp {
        let mut d = Dataset::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 1.0 - x], 5.0 + x);
        }
        Mlp::train(&d, &MlpConfig { epochs: 5, hidden: vec![8, 8], ..MlpConfig::default() })
    }

    #[test]
    fn string_roundtrip_is_exact() {
        let mlp = tiny_mlp();
        let text = to_string(&mlp);
        let back = from_str(&text).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(mlp.predict_one(&x), back.predict_one(&x));
    }

    #[test]
    fn file_roundtrip() {
        let mlp = tiny_mlp();
        let path = std::env::temp_dir().join("abacus_persist_test/model.mlp");
        save(&mlp, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(mlp.predict_one(&[0.5, 0.5]), back.predict_one(&[0.5, 0.5]));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(from_str("nonsense").is_err());
        let mlp = tiny_mlp();
        let mut text = to_string(&mlp);
        text.push_str("1.0\n"); // extra parameter
        assert!(from_str(&text).is_err());
        let truncated: String = to_string(&mlp).lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(from_str(&truncated).is_err());
    }

    #[test]
    fn model_and_sidecar_roundtrip() {
        let mlp = tiny_mlp();
        let dir = std::env::temp_dir().join("abacus_persist_sidecar_test");
        let model_path = dir.join("model.mlp");
        save(&mlp, &model_path).unwrap();
        save_round_ms(&model_path, 0.0625).unwrap();
        assert_eq!(round_ms_path(&model_path), dir.join("model.round_ms"));
        let back = load(&model_path).unwrap();
        assert_eq!(mlp.predict_one(&[0.2, 0.8]), back.predict_one(&[0.2, 0.8]));
        assert_eq!(load_round_ms(&model_path), Some(0.0625));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_sidecar_degrades_to_none() {
        let dir = std::env::temp_dir().join("abacus_persist_badsidecar_test");
        let model_path = dir.join("model.mlp");
        // Missing sidecar.
        assert_eq!(load_round_ms(&model_path), None);
        // Unparsable, non-finite and non-positive values.
        for bad in ["garbage", "NaN", "inf", "-1.5", "0"] {
            save_round_ms(&model_path, 1.0).unwrap();
            std::fs::write(round_ms_path(&model_path), bad).unwrap();
            assert_eq!(load_round_ms(&model_path), None, "sidecar {bad:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_else_retrains_on_missing_or_corrupt_cache() {
        let dir = std::env::temp_dir().join("abacus_persist_load_or_else_test");
        let path = dir.join("model.mlp");
        let fresh = tiny_mlp();

        // Missing cache: build runs.
        let (m, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);
        assert_eq!(m, fresh);

        // Intact cache: build must not run.
        save(&fresh, &path).unwrap();
        let (m, cached) = load_or_else(&path, || unreachable!("cache was intact"));
        assert!(cached);
        assert_eq!(m.predict_one(&[0.4, 0.6]), fresh.predict_one(&[0.4, 0.6]));

        // Truncated cache: graceful retrain instead of a parse panic.
        let full = to_string(&fresh);
        let truncated: String = full.lines().take(8).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, truncated).unwrap();
        let (_, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);

        // Corrupted parameter line: same.
        let corrupted = full + "not-a-number\n";
        std::fs::write(&path, corrupted).unwrap();
        let (_, cached) = load_or_else(&path, || fresh.clone());
        assert!(!cached);

        std::fs::remove_dir_all(&dir).ok();
    }

    use crate::conformal::ConformalModel;
    use crate::mlp::QuantileMlp;
    use workload::SeededRng;

    fn tiny_certifier() -> ConformalModel {
        let mut rng = SeededRng::new(13);
        let mut d = Dataset::new();
        for _ in 0..300 {
            let x = rng.f64();
            let y = 5.0 + 3.0 * x + 0.5 * rng.normal();
            d.push(vec![x, 1.0 - x], y.max(0.1));
        }
        let mut split_rng = SeededRng::new(2);
        let (fit, calib) = d.split(0.7, &mut split_rng);
        let heads = QuantileMlp::train(
            &fit,
            &MlpConfig {
                epochs: 5,
                hidden: vec![8, 8],
                ..MlpConfig::default()
            },
            &crate::conformal::CERT_TAUS,
        );
        ConformalModel::calibrate(heads, &calib, 0.05)
    }

    #[test]
    fn quantile_roundtrip_is_exact() {
        let cert = tiny_certifier();
        let q = cert.heads();
        let back = quantile_from_str(&quantile_to_string(q)).unwrap();
        assert_eq!(back.taus(), q.taus());
        for i in 0..10 {
            let x = [i as f64 / 10.0, 1.0 - i as f64 / 10.0];
            assert_eq!(q.predict_quantiles_one(&x), back.predict_quantiles_one(&x));
        }
    }

    #[test]
    fn conformal_roundtrip_is_exact() {
        let cert = tiny_certifier();
        let path = std::env::temp_dir().join("abacus_persist_conf_test/model.conf");
        save_conformal(&cert, &path).unwrap();
        let back = load_conformal(&path).unwrap();
        assert_eq!(back.alpha(), cert.alpha());
        assert_eq!(back.conformal(), cert.conformal());
        for i in 0..10 {
            let x = [i as f64 / 10.0, 1.0 - i as f64 / 10.0];
            assert_eq!(cert.predict_one(&x), back.predict_one(&x));
            assert_eq!(cert.upper_bounds_one(&x), back.upper_bounds_one(&x));
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_quantile_cache_degrades_to_retrain() {
        let dir = std::env::temp_dir().join("abacus_persist_qmlp_load_or_else_test");
        let path = dir.join("heads.qmlp");
        let fresh = tiny_certifier().heads().clone();

        // Missing cache: build runs.
        let (q, cached) = load_quantile_or_else(&path, || fresh.clone());
        assert!(!cached);
        assert_eq!(q, fresh);

        // Intact cache: build must not run.
        save_quantile(&fresh, &path).unwrap();
        let (_, cached) = load_quantile_or_else(&path, || unreachable!("cache was intact"));
        assert!(cached);

        // A stale *mean-model* artifact at the heads path (the PR 3 magic)
        // must retrain, not panic or half-load.
        let mean = tiny_mlp();
        save(&mean, &path).unwrap();
        let (_, cached) = load_quantile_or_else(&path, || fresh.clone());
        assert!(!cached);

        // Truncated and parameter-corrupted caches: graceful retrain.
        let full = quantile_to_string(&fresh);
        let truncated: String = full.lines().take(6).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, truncated).unwrap();
        let (_, cached) = load_quantile_or_else(&path, || fresh.clone());
        assert!(!cached);
        std::fs::write(&path, full + "not-a-number\n").unwrap();
        let (_, cached) = load_quantile_or_else(&path, || fresh.clone());
        assert!(!cached);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_conformal_cache_degrades_to_recalibrate() {
        let dir = std::env::temp_dir().join("abacus_persist_conf_load_or_else_test");
        let path = dir.join("cert.conf");
        let fresh = tiny_certifier();

        // Missing cache: build runs.
        let (m, cached) = load_conformal_or_else(&path, || fresh.clone());
        assert!(!cached);
        assert_eq!(m, fresh);

        // Intact cache: build must not run.
        save_conformal(&fresh, &path).unwrap();
        let (_, cached) = load_conformal_or_else(&path, || unreachable!("cache was intact"));
        assert!(cached);

        // Truncated mid-table, truncated mid-heads, corrupted correction.
        let full = conformal_to_string(&fresh);
        for keep in [3, 8] {
            let truncated: String = full.lines().take(keep).collect::<Vec<_>>().join("\n");
            std::fs::write(&path, truncated).unwrap();
            let (_, cached) = load_conformal_or_else(&path, || fresh.clone());
            assert!(!cached, "truncation at line {keep} must miss the cache");
        }
        let corrupted = full.replacen("abacus-qmlp-v1", "abacus-qmlp-v9", 1);
        std::fs::write(&path, corrupted).unwrap();
        let (_, cached) = load_conformal_or_else(&path, || fresh.clone());
        assert!(!cached);

        std::fs::remove_dir_all(&dir).ok();
    }
}
