//! Training datasets: (feature vector, measured latency) pairs.

use crate::features::GroupSpec;
use crate::profiler::ProfiledGroup;
use dnn_models::ModelLibrary;
use workload::SeededRng;

/// A supervised dataset of operator-group latencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Feature vectors (all the same dimension).
    pub x: Vec<Vec<f64>>,
    /// Target latencies, ms.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode profiled groups into a dataset (target = mean latency).
    pub fn from_profiles(profiles: &[ProfiledGroup], lib: &ModelLibrary) -> Self {
        let mut d = Self::new();
        for p in profiles {
            d.push(p.spec.features(lib), p.mean_ms);
        }
        d
    }

    /// Append one sample.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        if let Some(first) = self.x.first() {
            assert_eq!(first.len(), x.len(), "inconsistent feature dimension");
        }
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension (0 if empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        for (x, y) in other.x.into_iter().zip(other.y) {
            self.push(x, y);
        }
    }

    /// Shuffle and split into (train, test) with `train_frac` of the samples
    /// in the training set (the paper uses 80/20, §5.5).
    pub fn split(&self, train_frac: f64, rng: &mut SeededRng) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let n_train = (self.len() as f64 * train_frac).round() as usize;
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (pos, &i) in idx.iter().enumerate() {
            let target = if pos < n_train { &mut train } else { &mut test };
            target.push(self.x[i].clone(), self.y[i]);
        }
        (train, test)
    }

    /// K-fold partitions for cross-validation: returns `k` (train, test)
    /// pairs covering every sample exactly once as test data.
    pub fn kfold(&self, k: usize, rng: &mut SeededRng) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2 && k <= self.len(), "need 2 <= k <= n");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let mut train = Dataset::new();
            let mut test = Dataset::new();
            for (pos, &i) in idx.iter().enumerate() {
                let target = if pos % k == f { &mut test } else { &mut train };
                target.push(self.x[i].clone(), self.y[i]);
            }
            folds.push((train, test));
        }
        folds
    }

    /// Mean of the targets.
    pub fn y_mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.y.iter().sum::<f64>() / self.len() as f64
    }

    /// Standard deviation of the targets.
    pub fn y_std(&self) -> f64 {
        if self.len() < 2 {
            return 1.0;
        }
        let m = self.y_mean();
        (self.y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.len() as f64)
            .sqrt()
            .max(1e-9)
    }
}

/// Encode a batch of candidate groups for batched prediction (the multi-way
/// search path).
pub fn encode_groups(groups: &[GroupSpec], lib: &ModelLibrary) -> Vec<Vec<f64>> {
    groups.iter().map(|g| g.features(lib)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(vec![i as f64, 1.0], i as f64 * 2.0);
        }
        d
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(100);
        let mut rng = SeededRng::new(1);
        let (tr, te) = d.split(0.8, &mut rng);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        let mut ys: Vec<f64> = tr.y.iter().chain(te.y.iter()).copied().collect();
        ys.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(ys, d.y);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let d = toy(50);
        let mut rng = SeededRng::new(2);
        let folds = d.kfold(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut test_total = 0;
        for (tr, te) in &folds {
            assert_eq!(tr.len() + te.len(), 50);
            test_total += te.len();
        }
        assert_eq!(test_total, 50);
    }

    #[test]
    fn stats() {
        let d = toy(5); // y = 0,2,4,6,8
        assert!((d.y_mean() - 4.0).abs() < 1e-12);
        assert!((d.y_std() - 8.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimension")]
    fn dimension_mismatch_panics() {
        let mut d = toy(2);
        d.push(vec![1.0], 0.0);
    }
}
