//! The MLP duration model (§5.5).
//!
//! The paper limits the network to 3 hidden layers of dimension 32, trains
//! on 80% of the profiled samples and reports ≈ 5.5% mean absolute
//! percentage error — an order of magnitude better than linear regression
//! or SVM, because group duration is strongly non-linear in the operator
//! ranges (different layers of a model have very different costs, and
//! contention kicks in only when shares saturate).
//!
//! Implemented from scratch: dense layers + ReLU, MSE loss on standardised
//! targets, Adam optimiser, mini-batch SGD. Everything is `f64` and
//! deterministic given the config seed.

use crate::dataset::Dataset;
use crate::LatencyModel;
use workload::SeededRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (paper: `[32, 32, 32]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    /// When set, train with the pinball (quantile) loss at this quantile
    /// instead of MSE: the model then predicts e.g. the 90th-percentile
    /// group duration, giving the controller a tail-aware budget check
    /// (an extension beyond the paper's mean predictor).
    pub quantile: Option<f64>,
    /// Compute minibatch gradient chunks on the calling thread instead of
    /// the worker pool. Purely a perf knob (benchmarking, contention-free
    /// hosts): the chunked reduction order is fixed, so serial and pooled
    /// training produce bit-identical weights.
    pub serial: bool,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32, 32],
            epochs: 150,
            batch_size: 64,
            lr: 1e-3,
            seed: 0x5EED,
            quantile: None,
            serial: false,
        }
    }
}

impl MlpConfig {
    /// A faster configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            epochs: 40,
            ..Self::default()
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        // He initialisation for ReLU nets.
        let scale = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.normal() * scale).collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// The trained MLP duration model.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Target standardisation.
    y_mean: f64,
    y_std: f64,
    /// Inference-time weight layout, derived from `layers` at assembly.
    plan: InferencePlan,
}

/// Inference-optimised weight layout for the batched forward pass.
///
/// Each layer's weights are stored transposed (`in_dim × out_dim`,
/// contiguous over outputs) so the batched kernel's inner loop is a
/// sequential axpy over one cache line-friendly row — the GEMM-style
/// layout the multi-way search's prediction rounds run against. Built once
/// when the model is assembled (training touches only `Dense::w`).
#[derive(Debug, Clone, PartialEq)]
struct InferencePlan {
    /// Per layer: transposed weights, `wt[i * out_dim + o] = w[o * in_dim + i]`.
    wt: Vec<Vec<f64>>,
    /// Widest activation (in elements) across all layers, for sizing the
    /// batch workspace.
    max_width: usize,
    /// Host supports the 4-wide AVX2 axpy kernel (runtime-detected once).
    use_avx2: bool,
}

impl InferencePlan {
    fn build(layers: &[Dense]) -> Self {
        let wt = layers
            .iter()
            .map(|l| {
                let mut t = vec![0.0; l.w.len()];
                for o in 0..l.out_dim {
                    for i in 0..l.in_dim {
                        t[i * l.out_dim + o] = l.w[o * l.in_dim + i];
                    }
                }
                t
            })
            .collect();
        let max_width = layers
            .iter()
            .flat_map(|l| [l.in_dim, l.out_dim])
            .max()
            .unwrap_or(1);
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx2 = false;
        Self {
            wt,
            max_width,
            use_avx2,
        }
    }
}

/// Output rows up to this wide use the stack-accumulator fast path in
/// [`layer_kernel`]; wider layers fall back to streaming through memory.
/// Generously above the paper's 32-wide hidden layers.
const LAYER_ACC_WIDTH: usize = 128;

/// One dense layer of the batched forward pass: `b[..n*dout] = bias ⊕
/// a[..n*din] · wt`, rows packed at their layer's stride.
///
/// Per batch row the output accumulates in a stack buffer that stays in
/// registers/L1 across the whole input loop, so each output row is written
/// to `b` exactly once instead of once per non-zero input; the transposed
/// weight matrix is small enough (≤ a few kB per layer) to stay cache-hot
/// across rows. Per output the terms accumulate in ascending input order —
/// exactly as [`Dense::forward`] — so batched and scalar predictions agree
/// bit for bit (the axpy inner loop is element-wise: vectorising *across*
/// outputs reorders nothing *within* an output's accumulation chain).
///
/// `#[inline(always)]` so the AVX2 wrapper below compiles this exact body
/// with wider vector instructions enabled.
#[inline(always)]
fn layer_kernel(a: &[f64], b: &mut [f64], wt: &[f64], bias: &[f64], n: usize, din: usize) {
    let dout = bias.len();
    if dout <= LAYER_ACC_WIDTH {
        let mut acc = [0.0f64; LAYER_ACC_WIDTH];
        let acc = &mut acc[..dout];
        let rows = a[..n * din]
            .chunks_exact(din)
            .zip(b[..n * dout].chunks_exact_mut(dout));
        for (arow, y) in rows {
            acc.copy_from_slice(bias);
            for (i, &xi) in arow.iter().enumerate() {
                // Fig. 8 vectors are mostly zero (multi-hot bitmap, empty
                // slots) and so are post-ReLU activations: skipping zero
                // inputs skips whole weight rows.
                if xi == 0.0 {
                    continue;
                }
                let wrow = &wt[i * dout..(i + 1) * dout];
                for (yo, &w) in acc.iter_mut().zip(wrow) {
                    *yo += xi * w;
                }
            }
            y.copy_from_slice(acc);
        }
        return;
    }
    for row in b[..n * dout].chunks_exact_mut(dout) {
        row.copy_from_slice(bias);
    }
    for i in 0..din {
        let wrow = &wt[i * dout..(i + 1) * dout];
        let rows = a[..n * din]
            .chunks_exact(din)
            .zip(b[..n * dout].chunks_exact_mut(dout));
        for (arow, y) in rows {
            let xi = arow[i];
            if xi == 0.0 {
                continue;
            }
            for (yo, &w) in y.iter_mut().zip(wrow) {
                *yo += xi * w;
            }
        }
    }
}

/// [`layer_kernel`] compiled with AVX2 enabled (the axpy auto-vectorises
/// 4-wide). One `target_feature` boundary per *layer*, not per axpy, so
/// the inner loops inline fully.
///
/// # Safety
/// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn layer_kernel_avx2(a: &[f64], b: &mut [f64], wt: &[f64], bias: &[f64], n: usize, din: usize) {
    layer_kernel(a, b, wt, bias, n, din);
}

/// Reusable per-thread workspace for the batched forward pass: two
/// ping-pong activation buffers plus a packing buffer for the
/// `predict_batch` convenience path. Thread-local (instead of a lock)
/// keeps `&Mlp` freely shareable across scheduler threads with zero
/// contention on the hot path.
#[derive(Default)]
struct Workspace {
    a: Vec<f64>,
    b: Vec<f64>,
    packed: Vec<f64>,
    single: Vec<f64>,
}

thread_local! {
    static WORKSPACE: std::cell::RefCell<Workspace> = std::cell::RefCell::new(Workspace::default());
}

/// Adam hyper-parameters.
const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const EPS: f64 = 1e-8;

/// Samples per gradient chunk in minibatch training. Fixed — never derived
/// from the worker count — so the per-chunk partial sums and the
/// chunk-index reduction order are the same at 1 thread and N threads,
/// which makes the trained weights independent of host parallelism. 16
/// rows keeps one chunk's activations L1-resident while giving the default
/// 64-row minibatch four-way parallelism.
const GRAD_CHUNK: usize = 16;

/// Training-loss selector for the minibatch trainer. [`Loss::Mse`] and
/// [`Loss::Pinball`] drive the width-1 output layer with exactly the
/// arithmetic the pre-quantile-head trainer used (bit for bit — the golden
/// trainer suite pins this); [`Loss::MultiPinball`] trains one output head
/// per quantile, every head against the same standardised target, which is
/// how the p90/p95/p99 certification heads share one trunk.
#[derive(Clone, Copy)]
enum Loss<'a> {
    /// d(MSE)/d(out) on a single output.
    Mse,
    /// Pinball sub-gradient at one quantile on a single output.
    Pinball(f64),
    /// Per-head pinball sub-gradients: head `h` trains at `taus[h]`.
    MultiPinball(&'a [f64]),
}

/// Per-chunk scratch and gradient partial sums for minibatch training.
/// One lives behind a `Mutex` per chunk slot so pool workers can fill
/// disjoint chunks concurrently; the locks are uncontended by construction
/// (task `c` touches only slot `c`).
struct ChunkGrads {
    /// Row-packed post-ReLU activations entering each *hidden-to-next*
    /// layer: `acts[l]` is `rows × dims[l + 1]`, the input of layer
    /// `l + 1`. Layer 0's input is the caller's row slice itself.
    acts: Vec<Vec<f64>>,
    /// Pre-activations (before ReLU) per layer: `pre[l]` is
    /// `rows × dims[l+1]`.
    pre: Vec<Vec<f64>>,
    /// Back-propagated deltas, same shapes as `pre`.
    delta: Vec<Vec<f64>>,
    /// This chunk's gradient partial sums, laid out like `Dense::w`/`b`.
    gw: Vec<Vec<f64>>,
    gb: Vec<Vec<f64>>,
}

impl ChunkGrads {
    fn new(layers: &[Dense]) -> Self {
        let n = layers.len();
        Self {
            acts: vec![Vec::new(); n],
            pre: vec![Vec::new(); n],
            delta: vec![Vec::new(); n],
            gw: layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            gb: layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }
}

/// Refresh the transposed (`in_dim × out_dim`) weight copies the batched
/// forward kernel reads. Called once per optimiser step — a dense 3×32 net
/// has ~3 k weights, so the transpose is noise next to the forward itself.
fn refresh_transposed(layers: &[Dense], wt: &mut [Vec<f64>]) {
    for (l, t) in layers.iter().zip(wt.iter_mut()) {
        for o in 0..l.out_dim {
            for i in 0..l.in_dim {
                t[i * l.out_dim + o] = l.w[o * l.in_dim + i];
            }
        }
    }
}

/// Accumulate one chunk's weight/bias gradients: for every output `o` and
/// row `r`, `gb[o] += d` and `gw[o,·] += d · acts[r,·]`.
///
/// Outputs are the outer loop so one gradient row (and its bias cell)
/// stays hot across the whole chunk; rows ascend in the inner loop, so
/// each weight's terms still add in ascending sample order — the order the
/// scalar reference trainer uses. ReLU-masked deltas are mostly zero, so
/// `d == 0` skips whole axpys the way the forward kernel skips zero
/// inputs.
#[inline(always)]
fn grad_kernel(delta: &[f64], acts: &[f64], gw: &mut [f64], gb: &mut [f64], rows: usize, din: usize) {
    let dout = gb.len();
    for (o, b) in gb.iter_mut().enumerate() {
        let grow = &mut gw[o * din..(o + 1) * din];
        let mut bsum = *b;
        for r in 0..rows {
            let d = delta[r * dout + o];
            if d == 0.0 {
                continue;
            }
            bsum += d;
            let arow = &acts[r * din..(r + 1) * din];
            for (g, &a) in grow.iter_mut().zip(arow) {
                *g += d * a;
            }
        }
        *b = bsum;
    }
}

/// [`grad_kernel`] compiled with AVX2 enabled.
///
/// # Safety
/// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn grad_kernel_avx2(
    delta: &[f64],
    acts: &[f64],
    gw: &mut [f64],
    gb: &mut [f64],
    rows: usize,
    din: usize,
) {
    grad_kernel(delta, acts, gw, gb, rows, din);
}

/// Back-propagate a chunk's deltas through one layer:
/// `prev[r,·] = Σ_o delta[r,o] · w[o,·]`, then ReLU-masked at the previous
/// pre-activation. Outputs are the outer loop per row — the accumulation
/// order of the scalar reference — and each weight row is a contiguous
/// axpy. Zero deltas skip their whole weight row.
#[inline(always)]
fn delta_kernel(
    delta: &[f64],
    w: &[f64],
    pre_prev: &[f64],
    prev: &mut [f64],
    rows: usize,
    din: usize,
    dout: usize,
) {
    prev[..rows * din].fill(0.0);
    for r in 0..rows {
        let drow = &delta[r * dout..(r + 1) * dout];
        let prow = &mut prev[r * din..(r + 1) * din];
        for (o, &d) in drow.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            let wrow = &w[o * din..(o + 1) * din];
            for (p, &wv) in prow.iter_mut().zip(wrow) {
                *p += d * wv;
            }
        }
        let zrow = &pre_prev[r * din..(r + 1) * din];
        for (p, &z) in prow.iter_mut().zip(zrow) {
            if z <= 0.0 {
                *p = 0.0;
            }
        }
    }
}

/// [`delta_kernel`] compiled with AVX2 enabled.
///
/// # Safety
/// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn delta_kernel_avx2(
    delta: &[f64],
    w: &[f64],
    pre_prev: &[f64],
    prev: &mut [f64],
    rows: usize,
    din: usize,
    dout: usize,
) {
    delta_kernel(delta, w, pre_prev, prev, rows, din, dout);
}

/// [`layer_kernel`] compiled with AVX-512F enabled (8-wide f64 lanes).
/// Element-wise vectorisation only — per-output accumulation chains are
/// unchanged, so results stay bit-identical to the scalar kernel (Rust
/// does not contract mul+add into FMA).
///
/// # Safety
/// Caller must have verified AVX-512F support
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn layer_kernel_avx512(
    a: &[f64],
    b: &mut [f64],
    wt: &[f64],
    bias: &[f64],
    n: usize,
    din: usize,
) {
    layer_kernel(a, b, wt, bias, n, din);
}

/// [`grad_kernel`] compiled with AVX-512F enabled.
///
/// # Safety
/// Caller must have verified AVX-512F support
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn grad_kernel_avx512(
    delta: &[f64],
    acts: &[f64],
    gw: &mut [f64],
    gb: &mut [f64],
    rows: usize,
    din: usize,
) {
    grad_kernel(delta, acts, gw, gb, rows, din);
}

/// [`delta_kernel`] compiled with AVX-512F enabled.
///
/// # Safety
/// Caller must have verified AVX-512F support
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn delta_kernel_avx512(
    delta: &[f64],
    w: &[f64],
    pre_prev: &[f64],
    prev: &mut [f64],
    rows: usize,
    din: usize,
    dout: usize,
) {
    delta_kernel(delta, w, pre_prev, prev, rows, din, dout);
}

/// One Adam step over a parameter slice: per element,
/// `m ← β₁m + (1-β₁)g`, `v ← β₂v + (1-β₂)g²`,
/// `w ← w - lr·(m/bc₁)/(√(v/bc₂) + ε)`, with `g` pre-scaled by the
/// batch-mean factor. Exactly the reference trainer's update, element for
/// element — every lane runs the identical operation chain and IEEE
/// division/square root are correctly rounded at any vector width, so the
/// vectorised wrappers below produce bit-identical parameters. Worth
/// dispatching: the div+sqrt dependency chains make this update a fixed
/// per-step cost comparable to a layer's forward pass.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn adam_kernel(
    w: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    g: &[f64],
    scale: f64,
    lr: f64,
    bc1: f64,
    bc2: f64,
) {
    for (((w, m), v), &g) in w.iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(g) {
        let g = g * scale;
        *m = BETA1 * *m + (1.0 - BETA1) * g;
        *v = BETA2 * *v + (1.0 - BETA2) * g * g;
        *w -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
    }
}

/// [`adam_kernel`] compiled with AVX2 enabled.
///
/// # Safety
/// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_kernel_avx2(
    w: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    g: &[f64],
    scale: f64,
    lr: f64,
    bc1: f64,
    bc2: f64,
) {
    adam_kernel(w, m, v, g, scale, lr, bc1, bc2);
}

/// [`adam_kernel`] compiled with AVX-512F enabled.
///
/// # Safety
/// Caller must have verified AVX-512F support
/// (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn adam_kernel_avx512(
    w: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    g: &[f64],
    scale: f64,
    lr: f64,
    bc1: f64,
    bc2: f64,
) {
    adam_kernel(w, m, v, g, scale, lr, bc1, bc2);
}

/// Runtime SIMD tier for the training kernels, detected once per `train`
/// call. Every tier runs the same element-wise operation sequence — the
/// tier changes vector width, never accumulation order — so trained
/// weights are identical across hosts.
#[derive(Clone, Copy, PartialEq)]
enum Simd {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

impl Simd {
    fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Simd::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Simd::Avx2;
            }
        }
        Simd::Scalar
    }

    #[inline]
    fn layer(self, a: &[f64], b: &mut [f64], wt: &[f64], bias: &[f64], n: usize, din: usize) {
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            Simd::Avx512 => unsafe { layer_kernel_avx512(a, b, wt, bias, n, din) },
            #[cfg(target_arch = "x86_64")]
            Simd::Avx2 => unsafe { layer_kernel_avx2(a, b, wt, bias, n, din) },
            Simd::Scalar => layer_kernel(a, b, wt, bias, n, din),
        }
    }

    #[inline]
    fn grad(self, delta: &[f64], acts: &[f64], gw: &mut [f64], gb: &mut [f64], rows: usize, din: usize) {
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            Simd::Avx512 => unsafe { grad_kernel_avx512(delta, acts, gw, gb, rows, din) },
            #[cfg(target_arch = "x86_64")]
            Simd::Avx2 => unsafe { grad_kernel_avx2(delta, acts, gw, gb, rows, din) },
            Simd::Scalar => grad_kernel(delta, acts, gw, gb, rows, din),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn delta(
        self,
        delta: &[f64],
        w: &[f64],
        pre_prev: &[f64],
        prev: &mut [f64],
        rows: usize,
        din: usize,
        dout: usize,
    ) {
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            Simd::Avx512 => unsafe { delta_kernel_avx512(delta, w, pre_prev, prev, rows, din, dout) },
            #[cfg(target_arch = "x86_64")]
            Simd::Avx2 => unsafe { delta_kernel_avx2(delta, w, pre_prev, prev, rows, din, dout) },
            Simd::Scalar => delta_kernel(delta, w, pre_prev, prev, rows, din, dout),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn adam(
        self,
        w: &mut [f64],
        m: &mut [f64],
        v: &mut [f64],
        g: &[f64],
        scale: f64,
        lr: f64,
        bc1: f64,
        bc2: f64,
    ) {
        match self {
            // SAFETY: variants are selected only after runtime feature
            // detection in `detect`.
            #[cfg(target_arch = "x86_64")]
            Simd::Avx512 => unsafe { adam_kernel_avx512(w, m, v, g, scale, lr, bc1, bc2) },
            #[cfg(target_arch = "x86_64")]
            Simd::Avx2 => unsafe { adam_kernel_avx2(w, m, v, g, scale, lr, bc1, bc2) },
            Simd::Scalar => adam_kernel(w, m, v, g, scale, lr, bc1, bc2),
        }
    }
}

/// Forward one chunk of rows through the network and back-propagate its
/// gradient partial sums into `st.gw`/`st.gb` (cleared first).
///
/// The forward pass is the inference engine's batched kernel, so the
/// pre-activations equal the scalar reference's per-sample forward bit for
/// bit; the backward kernels accumulate every weight's terms in the same
/// (sample-major, ascending-index) order as the reference. The only
/// float-order difference from the pre-refactor trainer is therefore how
/// chunk partials join across a minibatch — see `Mlp::train`.
#[allow(clippy::too_many_arguments)]
fn chunk_forward_backward(
    layers: &[Dense],
    wt: &[Vec<f64>],
    simd: Simd,
    xs: &[f64],
    targets: &[f64],
    rows: usize,
    loss: Loss<'_>,
    st: &mut ChunkGrads,
) {
    let n_layers = layers.len();
    let ChunkGrads {
        acts,
        pre,
        delta,
        gw,
        gb,
    } = st;
    for g in gw.iter_mut() {
        g.fill(0.0);
    }
    for g in gb.iter_mut() {
        g.fill(0.0);
    }
    // Forward. Layer 0 reads the caller's rows in place; buffers are only
    // re-zeroed when the chunk width changes (the kernels overwrite every
    // cell they read).
    for l in 0..n_layers {
        let (din, dout) = (layers[l].in_dim, layers[l].out_dim);
        let need = rows * dout;
        if pre[l].len() != need {
            pre[l].resize(need, 0.0);
        }
        let inp: &[f64] = if l == 0 { xs } else { &acts[l - 1] };
        simd.layer(inp, &mut pre[l], &wt[l], &layers[l].b, rows, din);
        if l + 1 < n_layers {
            let dst = &mut acts[l];
            if dst.len() != need {
                dst.resize(need, 0.0);
            }
            for (d, &s) in dst.iter_mut().zip(&pre[l]) {
                *d = s.max(0.0);
            }
        }
    }
    // Output deltas: `pre[last]` holds `rows × out_dim` pre-activations
    // (one scalar per row for the single-output losses).
    let out_dim = layers[n_layers - 1].out_dim;
    let dlast = &mut delta[n_layers - 1];
    if dlast.len() != rows * out_dim {
        dlast.resize(rows * out_dim, 0.0);
    }
    let outs = &pre[n_layers - 1][..rows * out_dim];
    match loss {
        // d(MSE)/d(out).
        Loss::Mse => {
            for (d, (&out, &t)) in dlast.iter_mut().zip(outs.iter().zip(targets)) {
                *d = 2.0 * (out - t);
            }
        }
        // Pinball loss sub-gradient, scaled to keep the effective learning
        // rate comparable to MSE.
        Loss::Pinball(tau) => {
            for (d, (&out, &t)) in dlast.iter_mut().zip(outs.iter().zip(targets)) {
                *d = if out < t { -2.0 * tau } else { 2.0 * (1.0 - tau) };
            }
        }
        // One pinball sub-gradient per head, all against the row's target.
        Loss::MultiPinball(taus) => {
            for (r, &t) in targets.iter().enumerate() {
                for (h, &tau) in taus.iter().enumerate() {
                    let out = outs[r * out_dim + h];
                    dlast[r * out_dim + h] =
                        if out < t { -2.0 * tau } else { 2.0 * (1.0 - tau) };
                }
            }
        }
    }
    for l in (0..n_layers).rev() {
        let layer = &layers[l];
        let inp: &[f64] = if l == 0 { xs } else { &acts[l - 1] };
        simd.grad(&delta[l], inp, &mut gw[l], &mut gb[l], rows, layer.in_dim);
        if l > 0 {
            let (lo, hi) = delta.split_at_mut(l);
            let prev = &mut lo[l - 1];
            let need = rows * layer.in_dim;
            if prev.len() != need {
                prev.resize(need, 0.0);
            }
            simd.delta(
                &hi[0],
                &layer.w,
                &pre[l - 1],
                prev,
                rows,
                layer.in_dim,
                layer.out_dim,
            );
        }
    }
}

/// Compute one minibatch's summed (not yet batch-mean-scaled) gradients
/// into `gw`/`gb`: split the rows into fixed [`GRAD_CHUNK`]-sized chunks,
/// fill each chunk's partial sums (on the worker pool unless `serial`),
/// then reduce the partials in ascending chunk order. The chunk split and
/// the reduction order depend only on `rows`, so the result is bit-
/// identical at any worker count.
#[allow(clippy::too_many_arguments)]
fn minibatch_grads(
    layers: &[Dense],
    wt: &[Vec<f64>],
    simd: Simd,
    xb: &[f64],
    tb: &[f64],
    in_dim: usize,
    loss: Loss<'_>,
    serial: bool,
    chunk_states: &[std::sync::Mutex<ChunkGrads>],
    gw: &mut [Vec<f64>],
    gb: &mut [Vec<f64>],
) {
    let rows = tb.len();
    let n_chunks = rows.div_ceil(GRAD_CHUNK);
    debug_assert!(n_chunks <= chunk_states.len());
    for g in gw.iter_mut() {
        g.fill(0.0);
    }
    for g in gb.iter_mut() {
        g.fill(0.0);
    }
    let reduce = |st: &ChunkGrads, gw: &mut [Vec<f64>], gb: &mut [Vec<f64>]| {
        for l in 0..layers.len() {
            for (g, p) in gw[l].iter_mut().zip(&st.gw[l]) {
                *g += p;
            }
            for (g, p) in gb[l].iter_mut().zip(&st.gb[l]) {
                *g += p;
            }
        }
    };
    let chunk_rows = |c: usize| {
        let lo = c * GRAD_CHUNK;
        (lo, (lo + GRAD_CHUNK).min(rows))
    };
    if serial || n_chunks == 1 {
        // Single-threaded: run every chunk through one state and fold its
        // partials into the accumulators right away. Same chunk partials,
        // same chunk-order summation tree as the pooled path below — so
        // bit-identical results — but one hot ~L1-sized scratch instead of
        // `n_chunks` cold ones per minibatch.
        let st = &mut *chunk_states[0].lock().unwrap();
        for c in 0..n_chunks {
            let (lo, hi) = chunk_rows(c);
            chunk_forward_backward(
                layers,
                wt,
                simd,
                &xb[lo * in_dim..hi * in_dim],
                &tb[lo..hi],
                hi - lo,
                loss,
                st,
            );
            reduce(st, gw, gb);
        }
    } else {
        let task = |c: usize| {
            let (lo, hi) = chunk_rows(c);
            let st = &mut *chunk_states[c].lock().unwrap();
            chunk_forward_backward(
                layers,
                wt,
                simd,
                &xb[lo * in_dim..hi * in_dim],
                &tb[lo..hi],
                hi - lo,
                loss,
                st,
            );
        };
        rayon::pool::run(n_chunks, &task);
        for state in chunk_states.iter().take(n_chunks) {
            reduce(&state.lock().unwrap(), gw, gb);
        }
    }
}

/// The shared minibatch training loop: initialise an
/// `[in, hidden..., out_dim]` network and run `cfg.epochs` of chunked
/// minibatch Adam under `loss`, returning the trained layers plus the
/// target standardisation. [`Mlp::train`] calls this with `out_dim == 1`
/// and [`QuantileMlp::train`] with one output head per quantile; for a
/// fixed `(out_dim, loss)` the loop's arithmetic is untouched by the
/// factoring, so the single-output golden pins still hold bit for bit.
fn train_layers(
    data: &Dataset,
    cfg: &MlpConfig,
    out_dim: usize,
    loss: Loss<'_>,
) -> (Vec<Dense>, f64, f64) {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut rng = SeededRng::new(cfg.seed);
    let dims: Vec<usize> = std::iter::once(data.dim())
        .chain(cfg.hidden.iter().copied())
        .chain(std::iter::once(out_dim))
        .collect();
    let mut layers: Vec<Dense> = dims
        .windows(2)
        .map(|w| Dense::new(w[0], w[1], &mut rng))
        .collect();
    let y_mean = data.y_mean();
    let y_std = data.y_std();
    let in_dim = data.dim();

    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    let simd = Simd::detect();
    // The chunked reduction makes weights bit-identical under any
    // dispatch, so dispatch is a pure perf choice: skip the pool when
    // it cannot add concurrency (single-core host: one pool worker plus
    // the caller time-share one CPU, paying context switches per
    // minibatch for nothing).
    let serial = cfg.serial || rayon::pool::max_concurrency() <= 2;
    let mut wt: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
    refresh_transposed(&layers, &mut wt);
    let batch = cfg.batch_size.max(1);
    let chunk_states: Vec<std::sync::Mutex<ChunkGrads>> = (0..batch.div_ceil(GRAD_CHUNK))
        .map(|_| std::sync::Mutex::new(ChunkGrads::new(&layers)))
        .collect();
    let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
    let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
    let mut xb: Vec<f64> = Vec::with_capacity(batch * in_dim);
    let mut tb: Vec<f64> = Vec::with_capacity(batch);
    let mut t_step = 0usize;

    for _epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch_size) {
            xb.clear();
            tb.clear();
            for &i in chunk {
                xb.extend_from_slice(&data.x[i]);
                tb.push((data.y[i] - y_mean) / y_std);
            }
            minibatch_grads(
                &layers,
                &wt,
                simd,
                &xb,
                &tb,
                in_dim,
                loss,
                serial,
                &chunk_states,
                &mut gw,
                &mut gb,
            );
            // Adam update with batch-mean gradients — the reference
            // trainer's update element for element, run through the
            // SIMD-dispatched kernel (see `adam_kernel` for why that
            // is bit-identical).
            t_step += 1;
            let scale = 1.0 / chunk.len() as f64;
            let bc1 = 1.0 - BETA1.powi(t_step as i32);
            let bc2 = 1.0 - BETA2.powi(t_step as i32);
            for (l, layer) in layers.iter_mut().enumerate() {
                simd.adam(
                    &mut layer.w,
                    &mut layer.mw,
                    &mut layer.vw,
                    &gw[l],
                    scale,
                    cfg.lr,
                    bc1,
                    bc2,
                );
                simd.adam(
                    &mut layer.b,
                    &mut layer.mb,
                    &mut layer.vb,
                    &gb[l],
                    scale,
                    cfg.lr,
                    bc1,
                    bc2,
                );
            }
            refresh_transposed(&layers, &mut wt);
        }
    }
    (layers, y_mean, y_std)
}

/// Run the batched ping-pong forward pass through `layers`, leaving the
/// output layer's rows packed at stride `out_dim` at the front of `ws.a`.
/// Returns `false` when `n == 0` (nothing was forwarded). Shared by the
/// single-output [`Mlp`] and the multi-head [`QuantileMlp`]; only the
/// final extraction differs between the two.
fn forward_rows_raw(
    layers: &[Dense],
    plan: &InferencePlan,
    xs: &[f64],
    n: usize,
    ws: &mut Workspace,
) -> bool {
    let in_dim = layers[0].in_dim;
    assert_eq!(
        xs.len(),
        n * in_dim,
        "feature dimension mismatch — retrain the model (stale cache?)"
    );
    if n == 0 {
        return false;
    }
    // Both ping-pong buffers stay sized to the widest layer: rows are
    // packed at the current layer's stride inside them, and the bias
    // initialisation below overwrites every cell that will be read, so
    // no per-layer clear/zero-fill is needed.
    let width = plan.max_width;
    if ws.a.len() < n * width {
        ws.a.resize(n * width, 0.0);
        ws.b.resize(n * width, 0.0);
    }
    ws.a[..xs.len()].copy_from_slice(xs);
    let n_layers = layers.len();
    for (l, (layer, wt)) in layers.iter().zip(&plan.wt).enumerate() {
        let (din, dout) = (layer.in_dim, layer.out_dim);
        #[cfg(target_arch = "x86_64")]
        if plan.use_avx2 {
            // SAFETY: `use_avx2` is set only after runtime feature
            // detection.
            unsafe { layer_kernel_avx2(&ws.a, &mut ws.b, wt, &layer.b, n, din) };
        } else {
            layer_kernel(&ws.a, &mut ws.b, wt, &layer.b, n, din);
        }
        #[cfg(not(target_arch = "x86_64"))]
        layer_kernel(&ws.a, &mut ws.b, wt, &layer.b, n, din);
        if l + 1 < n_layers {
            for v in ws.b[..n * dout].iter_mut() {
                *v = v.max(0.0);
            }
        }
        std::mem::swap(&mut ws.a, &mut ws.b);
    }
    true
}

impl Mlp {
    /// Train on `data` with the given config.
    ///
    /// Minibatch matrix form of the original per-sample trainer (preserved
    /// verbatim as [`Mlp::train_reference`]): each minibatch is packed into
    /// a row matrix, forwarded through the inference engine's batched
    /// AVX2-dispatched kernels, and back-propagated with batched gradient
    /// kernels. Gradients are computed per fixed [`GRAD_CHUNK`]-row chunk
    /// (fanned out over the worker pool unless `cfg.serial`) and reduced in
    /// chunk-index order, so the trained weights are bit-identical at any
    /// thread count. RNG consumption (init + per-epoch shuffle) and the
    /// Adam update match the reference exactly; within a chunk every
    /// weight's gradient terms accumulate in the reference's sample-major
    /// order, so the only numeric difference from the reference is the
    /// cross-chunk summation tree (≤ ~1e-9 per step for minibatches wider
    /// than one chunk; bit-identical otherwise).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, cfg: &MlpConfig) -> Mlp {
        let loss = match cfg.quantile {
            None => Loss::Mse,
            Some(tau) => Loss::Pinball(tau),
        };
        let (layers, y_mean, y_std) = train_layers(data, cfg, 1, loss);
        Mlp::assemble(layers, y_mean, y_std)
    }

    /// The pre-refactor scalar trainer, preserved verbatim as the golden
    /// reference for [`Mlp::train`]: one sample at a time, per-sample
    /// forward/backward, gradients folded in sample order. The golden
    /// trainer test and `train_bench` compare against it; it is not used
    /// by production paths.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    // Preserved verbatim (golden reference) — exempt from loop-style lints.
    #[allow(clippy::needless_range_loop)]
    pub fn train_reference(data: &Dataset, cfg: &MlpConfig) -> Mlp {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut rng = SeededRng::new(cfg.seed);
        let dims: Vec<usize> = std::iter::once(data.dim())
            .chain(cfg.hidden.iter().copied())
            .chain(std::iter::once(1))
            .collect();
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        let y_mean = data.y_mean();
        let y_std = data.y_std();

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Per-layer scratch: activations (post-ReLU inputs) and deltas.
        let n_layers = layers.len();
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut pre: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        // Gradient accumulators per layer.
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut t_step = 0usize;

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch_size) {
                for g in gw.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in gb.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    let target = (data.y[i] - y_mean) / y_std;
                    // Forward.
                    acts[0].clear();
                    acts[0].extend_from_slice(&data.x[i]);
                    for (l, layer) in layers.iter().enumerate() {
                        let (head, tail) = acts.split_at_mut(l + 1);
                        layer.forward(&head[l], &mut pre[l]);
                        tail[0].clear();
                        if l + 1 < n_layers {
                            tail[0].extend(pre[l].iter().map(|&v| v.max(0.0)));
                        } else {
                            tail[0].extend_from_slice(&pre[l]);
                        }
                    }
                    let out = acts[n_layers][0];
                    let dloss = match cfg.quantile {
                        // d(MSE)/d(out).
                        None => 2.0 * (out - target),
                        // Pinball loss sub-gradient, scaled to keep the
                        // effective learning rate comparable to MSE.
                        Some(tau) => {
                            if out < target {
                                -2.0 * tau
                            } else {
                                2.0 * (1.0 - tau)
                            }
                        }
                    };
                    // Backward.
                    deltas[n_layers - 1].clear();
                    deltas[n_layers - 1].push(dloss);
                    for l in (0..n_layers).rev() {
                        // Accumulate gradients for layer l.
                        let layer = &layers[l];
                        for o in 0..layer.out_dim {
                            let d = deltas[l][o];
                            gb[l][o] += d;
                            let grow = &mut gw[l][o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (gv, &a) in grow.iter_mut().zip(&acts[l]) {
                                *gv += d * a;
                            }
                        }
                        // Propagate to layer l-1.
                        if l > 0 {
                            let (lo, hi) = deltas.split_at_mut(l);
                            let dl = &hi[0];
                            let prev = &mut lo[l - 1];
                            prev.clear();
                            prev.resize(layer.in_dim, 0.0);
                            for o in 0..layer.out_dim {
                                let d = dl[o];
                                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                                for (p, &w) in prev.iter_mut().zip(row) {
                                    *p += d * w;
                                }
                            }
                            // ReLU derivative at the previous pre-activation.
                            for (p, &z) in prev.iter_mut().zip(&pre[l - 1]) {
                                if z <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                        }
                    }
                }
                // Adam update with batch-mean gradients.
                t_step += 1;
                let scale = 1.0 / chunk.len() as f64;
                let bc1 = 1.0 - BETA1.powi(t_step as i32);
                let bc2 = 1.0 - BETA2.powi(t_step as i32);
                for (l, layer) in layers.iter_mut().enumerate() {
                    for (j, g) in gw[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mw[j] = BETA1 * layer.mw[j] + (1.0 - BETA1) * g;
                        layer.vw[j] = BETA2 * layer.vw[j] + (1.0 - BETA2) * g * g;
                        layer.w[j] -= cfg.lr * (layer.mw[j] / bc1) / ((layer.vw[j] / bc2).sqrt() + EPS);
                    }
                    for (j, g) in gb[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mb[j] = BETA1 * layer.mb[j] + (1.0 - BETA1) * g;
                        layer.vb[j] = BETA2 * layer.vb[j] + (1.0 - BETA2) * g * g;
                        layer.b[j] -= cfg.lr * (layer.mb[j] / bc1) / ((layer.vb[j] / bc2).sqrt() + EPS);
                    }
                }
            }
        }
        Mlp::assemble(layers, y_mean, y_std)
    }

    /// Finalise a model from trained layers: derives the inference plan
    /// (transposed weight layout) that the batched forward pass uses.
    fn assemble(layers: Vec<Dense>, y_mean: f64, y_std: f64) -> Mlp {
        let plan = InferencePlan::build(&layers);
        Mlp {
            layers,
            y_mean,
            y_std,
            plan,
        }
    }

    /// The batched forward pass: `n` rows packed in `xs`, predictions
    /// appended to `out` (which the caller has cleared). Runs entirely in
    /// the provided workspace buffers — no allocation once they are warm.
    ///
    /// Numerically identical to the per-sample path: for every output the
    /// terms accumulate in ascending input order, exactly as
    /// [`Dense::forward`] does, so batched and scalar predictions agree
    /// bit for bit.
    fn forward_rows(&self, xs: &[f64], n: usize, ws: &mut Workspace, out: &mut Vec<f64>) {
        if !forward_rows_raw(&self.layers, &self.plan, xs, n, ws) {
            return;
        }
        // The output layer has width 1: `a` now holds one scalar per row.
        out.extend(
            ws.a[..n]
                .iter()
                .map(|&z| (z * self.y_std + self.y_mean).max(0.0)),
        );
    }

    /// The pre-batching scalar forward pass: one sample, fresh `Vec`s per
    /// layer. Kept as the reference implementation — benches compare the
    /// batched engine against it, and the property tests use it as an
    /// allocation-independent oracle. Accumulates in the same order as the
    /// batched kernel, so both agree bit for bit.
    pub fn predict_one_scalar(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.layers[0].in_dim,
            "feature dimension mismatch — retrain the model (stale cache?)"
        );
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let n_layers = self.layers.len();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if l + 1 < n_layers {
                for v in next.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (cur[0] * self.y_std + self.y_mean).max(0.0)
    }

    /// Layer widths `[in, hidden..., 1]` (for persistence and stats).
    pub fn dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.layers.iter().map(|l| l.in_dim).collect();
        dims.push(1);
        dims
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// In-memory model size in bytes (f64 parameters), the §7.8 footprint.
    pub fn size_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    pub(crate) fn target_scaling(&self) -> (f64, f64) {
        (self.y_mean, self.y_std)
    }

    pub(crate) fn from_raw(
        dims: &[usize],
        params: &[f64],
        y_mean: f64,
        y_std: f64,
    ) -> Result<Mlp, String> {
        if dims.len() < 2 {
            return Err("need at least input and output dims".into());
        }
        let mut rng = SeededRng::new(0);
        let mut layers = Vec::new();
        let mut off = 0;
        for w in dims.windows(2) {
            let mut layer = Dense::new(w[0], w[1], &mut rng);
            let nw = layer.w.len();
            let nb = layer.b.len();
            if off + nw + nb > params.len() {
                return Err("parameter blob too short".into());
            }
            layer.w.copy_from_slice(&params[off..off + nw]);
            off += nw;
            layer.b.copy_from_slice(&params[off..off + nb]);
            off += nb;
            layers.push(layer);
        }
        if off != params.len() {
            return Err("parameter blob too long".into());
        }
        Ok(Mlp::assemble(layers, y_mean, y_std))
    }

    /// Flatten every layer's weights then biases, in layer order — the
    /// layout [`Mlp::from_raw`] accepts and the persistence format stores.
    /// Public so external tests can compare trained models parameter-wise.
    pub fn raw_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }
}

impl LatencyModel for Mlp {
    fn predict_one(&self, x: &[f64]) -> f64 {
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let mut single = std::mem::take(&mut ws.single);
            single.clear();
            self.forward_rows(x, 1, ws, &mut single);
            let y = single[0];
            ws.single = single;
            y
        })
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            self.forward_rows(xs, n, ws, out);
        });
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let mut packed = std::mem::take(&mut ws.packed);
            packed.clear();
            for x in xs {
                packed.extend_from_slice(x);
            }
            let mut out = Vec::with_capacity(xs.len());
            self.forward_rows(&packed, xs.len(), ws, &mut out);
            ws.packed = packed;
            out
        })
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

/// A multi-head quantile model: one shared trunk with one output head per
/// quantile, trained jointly under per-head pinball losses
/// ([`Loss::MultiPinball`]). The certification pipeline trains the
/// p90/p95/p99 heads this way and conformally calibrates them (see
/// `conformal`); a three-head 3×32 net costs the same trunk forward as the
/// mean predictor plus two extra output dot products.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileMlp {
    layers: Vec<Dense>,
    /// Target standardisation (same convention as [`Mlp`]).
    y_mean: f64,
    y_std: f64,
    /// Quantile levels per head, strictly ascending in `(0, 1)`.
    taus: Vec<f64>,
    plan: InferencePlan,
}

/// Validate a quantile-head configuration: non-empty, each level in
/// `(0, 1)`, strictly ascending.
fn check_taus(taus: &[f64]) {
    assert!(!taus.is_empty(), "need at least one quantile head");
    for pair in taus.windows(2) {
        assert!(pair[0] < pair[1], "quantile levels must be strictly ascending");
    }
    for &t in taus {
        assert!(t > 0.0 && t < 1.0, "quantile level {t} outside (0, 1)");
    }
}

impl QuantileMlp {
    /// Train the quantile heads on `data`.
    ///
    /// Exactly [`Mlp::train`]'s deterministic chunked minibatch loop with a
    /// `taus.len()`-wide output layer and per-head pinball gradients —
    /// weights are bit-identical at any worker count for the same reason
    /// (fixed [`GRAD_CHUNK`] split, chunk-index reduction order).
    /// `cfg.quantile` is ignored: the heads' levels come from `taus`.
    ///
    /// # Panics
    /// Panics on an empty dataset or an invalid `taus` (see [`check_taus`]).
    pub fn train(data: &Dataset, cfg: &MlpConfig, taus: &[f64]) -> QuantileMlp {
        check_taus(taus);
        let (layers, y_mean, y_std) =
            train_layers(data, cfg, taus.len(), Loss::MultiPinball(taus));
        QuantileMlp::assemble(layers, y_mean, y_std, taus.to_vec())
    }

    /// Scalar per-sample reference trainer for the quantile heads — the
    /// multi-head analogue of [`Mlp::train_reference`], and the golden
    /// oracle the quantile trainer tests compare [`QuantileMlp::train`]
    /// against. Not used by production paths.
    ///
    /// # Panics
    /// Panics on an empty dataset or an invalid `taus`.
    #[allow(clippy::needless_range_loop)]
    pub fn train_reference(data: &Dataset, cfg: &MlpConfig, taus: &[f64]) -> QuantileMlp {
        check_taus(taus);
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n_heads = taus.len();
        let mut rng = SeededRng::new(cfg.seed);
        let dims: Vec<usize> = std::iter::once(data.dim())
            .chain(cfg.hidden.iter().copied())
            .chain(std::iter::once(n_heads))
            .collect();
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        let y_mean = data.y_mean();
        let y_std = data.y_std();

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        let n_layers = layers.len();
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut pre: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut t_step = 0usize;

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch_size) {
                for g in gw.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in gb.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    let target = (data.y[i] - y_mean) / y_std;
                    // Forward.
                    acts[0].clear();
                    acts[0].extend_from_slice(&data.x[i]);
                    for (l, layer) in layers.iter().enumerate() {
                        let (head, tail) = acts.split_at_mut(l + 1);
                        layer.forward(&head[l], &mut pre[l]);
                        tail[0].clear();
                        if l + 1 < n_layers {
                            tail[0].extend(pre[l].iter().map(|&v| v.max(0.0)));
                        } else {
                            tail[0].extend_from_slice(&pre[l]);
                        }
                    }
                    // Per-head pinball sub-gradients against the shared
                    // target.
                    deltas[n_layers - 1].clear();
                    for (h, &tau) in taus.iter().enumerate() {
                        let out = acts[n_layers][h];
                        deltas[n_layers - 1].push(if out < target {
                            -2.0 * tau
                        } else {
                            2.0 * (1.0 - tau)
                        });
                    }
                    // Backward (identical to the single-output reference).
                    for l in (0..n_layers).rev() {
                        let layer = &layers[l];
                        for o in 0..layer.out_dim {
                            let d = deltas[l][o];
                            gb[l][o] += d;
                            let grow = &mut gw[l][o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (gv, &a) in grow.iter_mut().zip(&acts[l]) {
                                *gv += d * a;
                            }
                        }
                        if l > 0 {
                            let (lo, hi) = deltas.split_at_mut(l);
                            let dl = &hi[0];
                            let prev = &mut lo[l - 1];
                            prev.clear();
                            prev.resize(layer.in_dim, 0.0);
                            for o in 0..layer.out_dim {
                                let d = dl[o];
                                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                                for (p, &w) in prev.iter_mut().zip(row) {
                                    *p += d * w;
                                }
                            }
                            for (p, &z) in prev.iter_mut().zip(&pre[l - 1]) {
                                if z <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                        }
                    }
                }
                // Adam update with batch-mean gradients.
                t_step += 1;
                let scale = 1.0 / chunk.len() as f64;
                let bc1 = 1.0 - BETA1.powi(t_step as i32);
                let bc2 = 1.0 - BETA2.powi(t_step as i32);
                for (l, layer) in layers.iter_mut().enumerate() {
                    for (j, g) in gw[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mw[j] = BETA1 * layer.mw[j] + (1.0 - BETA1) * g;
                        layer.vw[j] = BETA2 * layer.vw[j] + (1.0 - BETA2) * g * g;
                        layer.w[j] -= cfg.lr * (layer.mw[j] / bc1) / ((layer.vw[j] / bc2).sqrt() + EPS);
                    }
                    for (j, g) in gb[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mb[j] = BETA1 * layer.mb[j] + (1.0 - BETA1) * g;
                        layer.vb[j] = BETA2 * layer.vb[j] + (1.0 - BETA2) * g * g;
                        layer.b[j] -= cfg.lr * (layer.mb[j] / bc1) / ((layer.vb[j] / bc2).sqrt() + EPS);
                    }
                }
            }
        }
        QuantileMlp::assemble(layers, y_mean, y_std, taus.to_vec())
    }

    fn assemble(layers: Vec<Dense>, y_mean: f64, y_std: f64, taus: Vec<f64>) -> QuantileMlp {
        let plan = InferencePlan::build(&layers);
        QuantileMlp {
            layers,
            y_mean,
            y_std,
            taus,
            plan,
        }
    }

    /// The quantile levels, one per head, ascending.
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// Number of output heads.
    pub fn n_heads(&self) -> usize {
        self.taus.len()
    }

    /// Batched multi-head prediction: `n` feature rows packed in `xs`,
    /// `n × n_heads` quantile predictions (ms, row-major, head-minor)
    /// appended to `out` (cleared first). Runs the same allocation-free
    /// batched kernels as [`Mlp::predict_into`].
    ///
    /// Heads are trained independently, so raw quantile curves can cross;
    /// the returned quantiles are rearranged monotone per row (running max
    /// in tau order), which the conformal calibration and the monotonicity
    /// guarantee `q_p90 ≤ q_p95 ≤ q_p99` both rely on. Predictions are
    /// clamped non-negative like the mean model's.
    pub fn predict_quantiles_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            if !forward_rows_raw(&self.layers, &self.plan, xs, n, ws) {
                return;
            }
            let h = self.taus.len();
            out.reserve(n * h);
            for row in ws.a[..n * h].chunks_exact(h) {
                let mut hi = f64::NEG_INFINITY;
                for &z in row {
                    let q = (z * self.y_std + self.y_mean).max(0.0);
                    hi = hi.max(q);
                    out.push(hi);
                }
            }
        });
    }

    /// All heads for one feature row (see [`predict_quantiles_into`]).
    ///
    /// [`predict_quantiles_into`]: QuantileMlp::predict_quantiles_into
    pub fn predict_quantiles_one(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.taus.len());
        self.predict_quantiles_into(x, 1, &mut out);
        out
    }

    /// Layer widths `[in, hidden..., n_heads]` (for persistence).
    pub fn dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.layers.iter().map(|l| l.in_dim).collect();
        dims.push(self.taus.len());
        dims
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    pub(crate) fn target_scaling(&self) -> (f64, f64) {
        (self.y_mean, self.y_std)
    }

    /// Flatten every layer's weights then biases, in layer order — the
    /// layout [`QuantileMlp::from_raw`] accepts and persistence stores.
    pub fn raw_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    pub(crate) fn from_raw(
        dims: &[usize],
        params: &[f64],
        y_mean: f64,
        y_std: f64,
        taus: Vec<f64>,
    ) -> Result<QuantileMlp, String> {
        if dims.len() < 2 {
            return Err("need at least input and output dims".into());
        }
        if *dims.last().unwrap() != taus.len() {
            return Err("output width does not match quantile head count".into());
        }
        if taus.is_empty()
            || taus.windows(2).any(|p| p[0] >= p[1])
            || taus.iter().any(|&t| !(t > 0.0 && t < 1.0))
        {
            return Err("invalid quantile levels".into());
        }
        let mut rng = SeededRng::new(0);
        let mut layers = Vec::new();
        let mut off = 0;
        for w in dims.windows(2) {
            let mut layer = Dense::new(w[0], w[1], &mut rng);
            let nw = layer.w.len();
            let nb = layer.b.len();
            if off + nw + nb > params.len() {
                return Err("parameter blob too short".into());
            }
            layer.w.copy_from_slice(&params[off..off + nw]);
            off += nw;
            layer.b.copy_from_slice(&params[off..off + nb]);
            off += nb;
            layers.push(layer);
        }
        if off != params.len() {
            return Err("parameter blob too long".into());
        }
        Ok(QuantileMlp::assemble(layers, y_mean, y_std, taus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Per-sample scalar gradient reference mirroring the inner loop of
    /// [`Mlp::train_reference`]: fold every sample's forward/backward into
    /// the accumulators in sample order.
    #[allow(clippy::needless_range_loop)]
    fn scalar_grads(
        layers: &[Dense],
        xs: &[f64],
        targets: &[f64],
        in_dim: usize,
        loss: Loss<'_>,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n_layers = layers.len();
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut pre: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        for (r, &target) in targets.iter().enumerate() {
            acts[0].clear();
            acts[0].extend_from_slice(&xs[r * in_dim..(r + 1) * in_dim]);
            for (l, layer) in layers.iter().enumerate() {
                let (head, tail) = acts.split_at_mut(l + 1);
                layer.forward(&head[l], &mut pre[l]);
                tail[0].clear();
                if l + 1 < n_layers {
                    tail[0].extend(pre[l].iter().map(|&v| v.max(0.0)));
                } else {
                    tail[0].extend_from_slice(&pre[l]);
                }
            }
            deltas[n_layers - 1].clear();
            match loss {
                Loss::Mse => deltas[n_layers - 1].push(2.0 * (acts[n_layers][0] - target)),
                Loss::Pinball(tau) => deltas[n_layers - 1].push(if acts[n_layers][0] < target {
                    -2.0 * tau
                } else {
                    2.0 * (1.0 - tau)
                }),
                Loss::MultiPinball(taus) => {
                    for (h, &tau) in taus.iter().enumerate() {
                        deltas[n_layers - 1].push(if acts[n_layers][h] < target {
                            -2.0 * tau
                        } else {
                            2.0 * (1.0 - tau)
                        });
                    }
                }
            }
            for l in (0..n_layers).rev() {
                let layer = &layers[l];
                for o in 0..layer.out_dim {
                    let d = deltas[l][o];
                    gb[l][o] += d;
                    let grow = &mut gw[l][o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (gv, &a) in grow.iter_mut().zip(&acts[l]) {
                        *gv += d * a;
                    }
                }
                if l > 0 {
                    let (lo, hi) = deltas.split_at_mut(l);
                    let dl = &hi[0];
                    let prev = &mut lo[l - 1];
                    prev.clear();
                    prev.resize(layer.in_dim, 0.0);
                    for o in 0..layer.out_dim {
                        let d = dl[o];
                        let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                        for (p, &w) in prev.iter_mut().zip(row) {
                            *p += d * w;
                        }
                    }
                    for (p, &z) in prev.iter_mut().zip(&pre[l - 1]) {
                        if z <= 0.0 {
                            *p = 0.0;
                        }
                    }
                }
            }
        }
        (gw, gb)
    }

    fn run_minibatch(
        layers: &[Dense],
        xs: &[f64],
        targets: &[f64],
        in_dim: usize,
        loss: Loss<'_>,
        serial: bool,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut wt: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        refresh_transposed(layers, &mut wt);
        let states: Vec<std::sync::Mutex<ChunkGrads>> = (0..targets.len().div_ceil(GRAD_CHUNK))
            .map(|_| std::sync::Mutex::new(ChunkGrads::new(layers)))
            .collect();
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        minibatch_grads(
            layers,
            &wt,
            Simd::detect(),
            xs,
            targets,
            in_dim,
            loss,
            serial,
            &states,
            &mut gw,
            &mut gb,
        );
        (gw, gb)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The batched chunked gradient pipeline agrees with the scalar
        /// per-sample reference to 1e-9 across random layer shapes, batch
        /// sizes and all three losses (MSE, single pinball, multi-head
        /// pinball) — and its serial and pooled dispatch paths agree with
        /// each other bit for bit.
        #[test]
        fn minibatch_grads_match_scalar_reference(
            seed in 0u64..1024,
            in_dim in 1usize..6,
            hidden in proptest::collection::vec(1usize..9, 0..3),
            rows in 1usize..41,
            mode in 0usize..3,
            tau in 0.05f64..0.95,
            n_heads in 1usize..5,
        ) {
            let taus: Vec<f64> = (1..=n_heads)
                .map(|h| 0.5 + 0.45 * h as f64 / n_heads as f64)
                .collect();
            let loss = match mode {
                0 => Loss::Mse,
                1 => Loss::Pinball(tau),
                _ => Loss::MultiPinball(&taus),
            };
            let out_dim = if mode == 2 { taus.len() } else { 1 };
            let mut rng = SeededRng::new(seed);
            let dims: Vec<usize> = std::iter::once(in_dim)
                .chain(hidden)
                .chain(std::iter::once(out_dim))
                .collect();
            let layers: Vec<Dense> = dims
                .windows(2)
                .map(|w| Dense::new(w[0], w[1], &mut rng))
                .collect();
            // Sparse-ish inputs (~25% zeros) exercise the zero-skip in the
            // forward and gradient kernels.
            let xs: Vec<f64> = (0..rows * in_dim)
                .map(|_| if rng.f64() < 0.25 { 0.0 } else { 2.0 * rng.f64() - 1.0 })
                .collect();
            let targets: Vec<f64> = (0..rows).map(|_| 2.0 * rng.f64() - 1.0).collect();

            let (sgw, sgb) = scalar_grads(&layers, &xs, &targets, in_dim, loss);
            let (gw_ser, gb_ser) = run_minibatch(&layers, &xs, &targets, in_dim, loss, true);
            let (gw_par, gb_par) = run_minibatch(&layers, &xs, &targets, in_dim, loss, false);

            prop_assert_eq!(&gw_ser, &gw_par, "serial vs pooled weight grads");
            prop_assert_eq!(&gb_ser, &gb_par, "serial vs pooled bias grads");
            for l in 0..layers.len() {
                for (j, (g, s)) in gw_ser[l].iter().zip(&sgw[l]).enumerate() {
                    prop_assert!((g - s).abs() <= 1e-9, "layer {} gw[{}]: {} vs {}", l, j, g, s);
                }
                for (j, (g, s)) in gb_ser[l].iter().zip(&sgb[l]).enumerate() {
                    prop_assert!((g - s).abs() <= 1e-9, "layer {} gb[{}]: {} vs {}", l, j, g, s);
                }
            }
        }
    }

    /// y = 3*x0 + relu-ish non-linearity of x1.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0 = rng.f64();
            let x1 = rng.f64();
            let y = 10.0 + 30.0 * x0 + 20.0 * (x1 - 0.5).max(0.0);
            d.push(vec![x0, x1], y);
        }
        d
    }

    #[test]
    fn learns_nonlinear_function() {
        let train = synthetic(2000, 1);
        let test = synthetic(300, 2);
        let mlp = Mlp::train(
            &train,
            &MlpConfig {
                hidden: vec![32, 32, 32],
                epochs: 60,
                batch_size: 64,
                lr: 2e-3,
                seed: 3,
                quantile: None,
                serial: false,
            },
        );
        let mape = crate::eval::mape(&mlp, &test);
        assert!(mape < 0.05, "mape {mape}");
    }

    #[test]
    fn deterministic_training() {
        let d = synthetic(200, 4);
        let cfg = MlpConfig {
            epochs: 5,
            ..MlpConfig::default()
        };
        let a = Mlp::train(&d, &cfg);
        let b = Mlp::train(&d, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_sized_model_is_small() {
        // §7.8: the predictor occupies ~14 kB. A 23-input 3x32 MLP:
        // 23*32+32 + 32*32+32 + 32*32+32 + 32+1 = ~2.9k params * 4 B (f32
        // in the paper) ≈ 12 kB; we store f64.
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![0.1 * i as f64; 23], i as f64);
        }
        let mlp = Mlp::train(
            &d,
            &MlpConfig {
                epochs: 1,
                ..MlpConfig::default()
            },
        );
        assert_eq!(mlp.param_count(), 23 * 32 + 32 + 32 * 32 + 32 + 32 * 32 + 32 + 32 + 1);
        assert!(mlp.size_bytes() < 30_000);
    }

    #[test]
    fn quantile_training_biases_upward() {
        // With symmetric noise around the mean, a q90 model should predict
        // above the mean most of the time.
        let mut rng = SeededRng::new(9);
        let mut d = Dataset::new();
        for _ in 0..3000 {
            let x = rng.f64();
            let y = 20.0 + 10.0 * x + 2.0 * rng.normal();
            d.push(vec![x], y.max(0.1));
        }
        let mean_model = Mlp::train(&d, &MlpConfig { epochs: 40, ..MlpConfig::default() });
        let q90 = Mlp::train(
            &d,
            &MlpConfig {
                epochs: 40,
                quantile: Some(0.9),
                ..MlpConfig::default()
            },
        );
        let mut above = 0;
        for i in 0..20 {
            let x = [i as f64 / 20.0];
            if q90.predict_one(&x) > mean_model.predict_one(&x) {
                above += 1;
            }
        }
        assert!(above >= 16, "q90 above mean at {above}/20 points");
        // And it covers ~90% of the observed targets.
        let covered = d
            .x
            .iter()
            .zip(&d.y)
            .filter(|(x, &y)| q90.predict_one(x) >= y)
            .count();
        let frac = covered as f64 / d.len() as f64;
        assert!((0.80..0.97).contains(&frac), "coverage {frac}");
    }

    /// Noisy linear data for the quantile-head tests.
    fn noisy(n: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x = rng.f64();
            let y = 20.0 + 10.0 * x + 2.0 * rng.normal();
            d.push(vec![x], y.max(0.1));
        }
        d
    }

    #[test]
    fn quantile_heads_are_monotone_and_cover() {
        let d = noisy(3000, 9);
        let q = QuantileMlp::train(
            &d,
            &MlpConfig {
                epochs: 40,
                ..MlpConfig::default()
            },
            &[0.9, 0.95, 0.99],
        );
        assert_eq!(q.n_heads(), 3);
        // Monotone per row by construction, and batched == scalar path.
        let mut packed = Vec::new();
        for i in 0..20 {
            packed.push(i as f64 / 20.0);
        }
        let mut out = Vec::new();
        q.predict_quantiles_into(&packed, 20, &mut out);
        for (r, row) in out.chunks_exact(3).enumerate() {
            assert!(row[0] <= row[1] && row[1] <= row[2], "row {r}: {row:?}");
            assert_eq!(row, &q.predict_quantiles_one(&[r as f64 / 20.0])[..]);
        }
        // Each head covers at least its level minus slack on the train set
        // (pinball loss pulls coverage toward tau).
        for (h, (&tau, floor)) in q.taus().iter().zip([0.80, 0.85, 0.90]).enumerate() {
            let covered = d
                .x
                .iter()
                .zip(&d.y)
                .filter(|(x, &y)| q.predict_quantiles_one(x)[h] >= y)
                .count();
            let frac = covered as f64 / d.len() as f64;
            assert!(frac >= floor, "head {h} (tau {tau}) coverage {frac}");
        }
    }

    #[test]
    fn quantile_training_is_deterministic() {
        let d = noisy(200, 4);
        let cfg = MlpConfig {
            epochs: 5,
            ..MlpConfig::default()
        };
        let a = QuantileMlp::train(&d, &cfg, &[0.9, 0.95, 0.99]);
        let b = QuantileMlp::train(&d, &cfg, &[0.9, 0.95, 0.99]);
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_raw_roundtrip() {
        let d = noisy(100, 6);
        let q = QuantileMlp::train(
            &d,
            &MlpConfig {
                epochs: 3,
                ..MlpConfig::default()
            },
            &[0.9, 0.95],
        );
        let rebuilt = QuantileMlp::from_raw(
            &q.dims(),
            &q.raw_params(),
            q.y_mean,
            q.y_std,
            q.taus().to_vec(),
        )
        .unwrap();
        for i in 0..10 {
            let x = [i as f64 / 10.0];
            assert_eq!(q.predict_quantiles_one(&x), rebuilt.predict_quantiles_one(&x));
        }
        assert_eq!(q.dims(), rebuilt.dims());
        // A head-count mismatch is an error, not a panic.
        assert!(QuantileMlp::from_raw(&q.dims(), &q.raw_params(), 0.0, 1.0, vec![0.9]).is_err());
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        let d = synthetic(100, 5);
        let mlp = Mlp::train(&d, &MlpConfig { epochs: 2, ..MlpConfig::default() });
        assert!(mlp.predict_one(&[-100.0, -100.0]) >= 0.0);
    }

    #[test]
    fn raw_roundtrip() {
        let d = synthetic(100, 6);
        let mlp = Mlp::train(&d, &MlpConfig { epochs: 3, ..MlpConfig::default() });
        let rebuilt =
            Mlp::from_raw(&mlp.dims(), &mlp.raw_params(), mlp.y_mean, mlp.y_std).unwrap();
        // Adam moments are not persisted, so compare behaviour, not state.
        for i in 0..10 {
            let x = [i as f64 / 10.0, 1.0 - i as f64 / 10.0];
            assert_eq!(mlp.predict_one(&x), rebuilt.predict_one(&x));
        }
        assert_eq!(mlp.dims(), rebuilt.dims());
    }
}
