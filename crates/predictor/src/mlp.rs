//! The MLP duration model (§5.5).
//!
//! The paper limits the network to 3 hidden layers of dimension 32, trains
//! on 80% of the profiled samples and reports ≈ 5.5% mean absolute
//! percentage error — an order of magnitude better than linear regression
//! or SVM, because group duration is strongly non-linear in the operator
//! ranges (different layers of a model have very different costs, and
//! contention kicks in only when shares saturate).
//!
//! Implemented from scratch: dense layers + ReLU, MSE loss on standardised
//! targets, Adam optimiser, mini-batch SGD. Everything is `f64` and
//! deterministic given the config seed.

use crate::dataset::Dataset;
use crate::LatencyModel;
use workload::SeededRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths (paper: `[32, 32, 32]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    /// When set, train with the pinball (quantile) loss at this quantile
    /// instead of MSE: the model then predicts e.g. the 90th-percentile
    /// group duration, giving the controller a tail-aware budget check
    /// (an extension beyond the paper's mean predictor).
    pub quantile: Option<f64>,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32, 32],
            epochs: 150,
            batch_size: 64,
            lr: 1e-3,
            seed: 0x5EED,
            quantile: None,
        }
    }
}

impl MlpConfig {
    /// A faster configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            epochs: 40,
            ..Self::default()
        }
    }
}

/// One dense layer with Adam state.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim`.
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        // He initialisation for ReLU nets.
        let scale = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim).map(|_| rng.normal() * scale).collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            mw: vec![0.0; in_dim * out_dim],
            vw: vec![0.0; in_dim * out_dim],
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            out.push(acc);
        }
    }
}

/// The trained MLP duration model.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    /// Target standardisation.
    y_mean: f64,
    y_std: f64,
    /// Inference-time weight layout, derived from `layers` at assembly.
    plan: InferencePlan,
}

/// Inference-optimised weight layout for the batched forward pass.
///
/// Each layer's weights are stored transposed (`in_dim × out_dim`,
/// contiguous over outputs) so the batched kernel's inner loop is a
/// sequential axpy over one cache line-friendly row — the GEMM-style
/// layout the multi-way search's prediction rounds run against. Built once
/// when the model is assembled (training touches only `Dense::w`).
#[derive(Debug, Clone, PartialEq)]
struct InferencePlan {
    /// Per layer: transposed weights, `wt[i * out_dim + o] = w[o * in_dim + i]`.
    wt: Vec<Vec<f64>>,
    /// Widest activation (in elements) across all layers, for sizing the
    /// batch workspace.
    max_width: usize,
    /// Host supports the 4-wide AVX2 axpy kernel (runtime-detected once).
    use_avx2: bool,
}

impl InferencePlan {
    fn build(layers: &[Dense]) -> Self {
        let wt = layers
            .iter()
            .map(|l| {
                let mut t = vec![0.0; l.w.len()];
                for o in 0..l.out_dim {
                    for i in 0..l.in_dim {
                        t[i * l.out_dim + o] = l.w[o * l.in_dim + i];
                    }
                }
                t
            })
            .collect();
        let max_width = layers
            .iter()
            .flat_map(|l| [l.in_dim, l.out_dim])
            .max()
            .unwrap_or(1);
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx2 = false;
        Self {
            wt,
            max_width,
            use_avx2,
        }
    }
}

/// One dense layer of the batched forward pass: `b[..n*dout] = bias ⊕
/// a[..n*din] · wt`, rows packed at their layer's stride.
///
/// GEMM-style blocking: the input dimension is the outer loop, so one
/// transposed weight row is loaded once and applied to every batch row
/// while it is hot in cache. Per output the terms still accumulate in
/// ascending input order — exactly as [`Dense::forward`] — so batched and
/// scalar predictions agree bit for bit (the axpy inner loop is
/// element-wise: vectorising *across* outputs reorders nothing *within*
/// an output's accumulation chain).
///
/// `#[inline(always)]` so the AVX2 wrapper below compiles this exact body
/// with wider vector instructions enabled.
#[inline(always)]
fn layer_kernel(a: &[f64], b: &mut [f64], wt: &[f64], bias: &[f64], n: usize, din: usize) {
    let dout = bias.len();
    for row in b[..n * dout].chunks_exact_mut(dout) {
        row.copy_from_slice(bias);
    }
    for i in 0..din {
        let wrow = &wt[i * dout..(i + 1) * dout];
        let rows = a[..n * din]
            .chunks_exact(din)
            .zip(b[..n * dout].chunks_exact_mut(dout));
        for (arow, y) in rows {
            // Fig. 8 vectors are mostly zero (multi-hot bitmap, empty
            // slots) and so are post-ReLU activations: skipping zero
            // inputs skips whole weight rows.
            let xi = arow[i];
            if xi == 0.0 {
                continue;
            }
            for (yo, &w) in y.iter_mut().zip(wrow) {
                *yo += xi * w;
            }
        }
    }
}

/// [`layer_kernel`] compiled with AVX2 enabled (the axpy auto-vectorises
/// 4-wide). One `target_feature` boundary per *layer*, not per axpy, so
/// the inner loops inline fully.
///
/// # Safety
/// Caller must have verified AVX2 support (`is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn layer_kernel_avx2(a: &[f64], b: &mut [f64], wt: &[f64], bias: &[f64], n: usize, din: usize) {
    layer_kernel(a, b, wt, bias, n, din);
}

/// Reusable per-thread workspace for the batched forward pass: two
/// ping-pong activation buffers plus a packing buffer for the
/// `predict_batch` convenience path. Thread-local (instead of a lock)
/// keeps `&Mlp` freely shareable across scheduler threads with zero
/// contention on the hot path.
#[derive(Default)]
struct Workspace {
    a: Vec<f64>,
    b: Vec<f64>,
    packed: Vec<f64>,
    single: Vec<f64>,
}

thread_local! {
    static WORKSPACE: std::cell::RefCell<Workspace> = std::cell::RefCell::new(Workspace::default());
}

/// Adam hyper-parameters.
const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const EPS: f64 = 1e-8;

impl Mlp {
    /// Train on `data` with the given config.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, cfg: &MlpConfig) -> Mlp {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut rng = SeededRng::new(cfg.seed);
        let dims: Vec<usize> = std::iter::once(data.dim())
            .chain(cfg.hidden.iter().copied())
            .chain(std::iter::once(1))
            .collect();
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        let y_mean = data.y_mean();
        let y_std = data.y_std();

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Per-layer scratch: activations (post-ReLU inputs) and deltas.
        let n_layers = layers.len();
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut pre: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); n_layers];
        // Gradient accumulators per layer.
        let mut gw: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut t_step = 0usize;

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch_size) {
                for g in gw.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for g in gb.iter_mut() {
                    g.iter_mut().for_each(|v| *v = 0.0);
                }
                for &i in chunk {
                    let target = (data.y[i] - y_mean) / y_std;
                    // Forward.
                    acts[0].clear();
                    acts[0].extend_from_slice(&data.x[i]);
                    for (l, layer) in layers.iter().enumerate() {
                        let (head, tail) = acts.split_at_mut(l + 1);
                        layer.forward(&head[l], &mut pre[l]);
                        tail[0].clear();
                        if l + 1 < n_layers {
                            tail[0].extend(pre[l].iter().map(|&v| v.max(0.0)));
                        } else {
                            tail[0].extend_from_slice(&pre[l]);
                        }
                    }
                    let out = acts[n_layers][0];
                    let dloss = match cfg.quantile {
                        // d(MSE)/d(out).
                        None => 2.0 * (out - target),
                        // Pinball loss sub-gradient, scaled to keep the
                        // effective learning rate comparable to MSE.
                        Some(tau) => {
                            if out < target {
                                -2.0 * tau
                            } else {
                                2.0 * (1.0 - tau)
                            }
                        }
                    };
                    // Backward.
                    deltas[n_layers - 1].clear();
                    deltas[n_layers - 1].push(dloss);
                    for l in (0..n_layers).rev() {
                        // Accumulate gradients for layer l.
                        let layer = &layers[l];
                        for o in 0..layer.out_dim {
                            let d = deltas[l][o];
                            gb[l][o] += d;
                            let grow = &mut gw[l][o * layer.in_dim..(o + 1) * layer.in_dim];
                            for (gv, &a) in grow.iter_mut().zip(&acts[l]) {
                                *gv += d * a;
                            }
                        }
                        // Propagate to layer l-1.
                        if l > 0 {
                            let (lo, hi) = deltas.split_at_mut(l);
                            let dl = &hi[0];
                            let prev = &mut lo[l - 1];
                            prev.clear();
                            prev.resize(layer.in_dim, 0.0);
                            for o in 0..layer.out_dim {
                                let d = dl[o];
                                let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                                for (p, &w) in prev.iter_mut().zip(row) {
                                    *p += d * w;
                                }
                            }
                            // ReLU derivative at the previous pre-activation.
                            for (p, &z) in prev.iter_mut().zip(&pre[l - 1]) {
                                if z <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                        }
                    }
                }
                // Adam update with batch-mean gradients.
                t_step += 1;
                let scale = 1.0 / chunk.len() as f64;
                let bc1 = 1.0 - BETA1.powi(t_step as i32);
                let bc2 = 1.0 - BETA2.powi(t_step as i32);
                for (l, layer) in layers.iter_mut().enumerate() {
                    for (j, g) in gw[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mw[j] = BETA1 * layer.mw[j] + (1.0 - BETA1) * g;
                        layer.vw[j] = BETA2 * layer.vw[j] + (1.0 - BETA2) * g * g;
                        layer.w[j] -= cfg.lr * (layer.mw[j] / bc1) / ((layer.vw[j] / bc2).sqrt() + EPS);
                    }
                    for (j, g) in gb[l].iter().enumerate() {
                        let g = g * scale;
                        layer.mb[j] = BETA1 * layer.mb[j] + (1.0 - BETA1) * g;
                        layer.vb[j] = BETA2 * layer.vb[j] + (1.0 - BETA2) * g * g;
                        layer.b[j] -= cfg.lr * (layer.mb[j] / bc1) / ((layer.vb[j] / bc2).sqrt() + EPS);
                    }
                }
            }
        }
        Mlp::assemble(layers, y_mean, y_std)
    }

    /// Finalise a model from trained layers: derives the inference plan
    /// (transposed weight layout) that the batched forward pass uses.
    fn assemble(layers: Vec<Dense>, y_mean: f64, y_std: f64) -> Mlp {
        let plan = InferencePlan::build(&layers);
        Mlp {
            layers,
            y_mean,
            y_std,
            plan,
        }
    }

    /// The batched forward pass: `n` rows packed in `xs`, predictions
    /// appended to `out` (which the caller has cleared). Runs entirely in
    /// the provided workspace buffers — no allocation once they are warm.
    ///
    /// Numerically identical to the per-sample path: for every output the
    /// terms accumulate in ascending input order, exactly as
    /// [`Dense::forward`] does, so batched and scalar predictions agree
    /// bit for bit.
    fn forward_rows(&self, xs: &[f64], n: usize, ws: &mut Workspace, out: &mut Vec<f64>) {
        let in_dim = self.layers[0].in_dim;
        assert_eq!(
            xs.len(),
            n * in_dim,
            "feature dimension mismatch — retrain the model (stale cache?)"
        );
        if n == 0 {
            return;
        }
        // Both ping-pong buffers stay sized to the widest layer: rows are
        // packed at the current layer's stride inside them, and the bias
        // initialisation below overwrites every cell that will be read, so
        // no per-layer clear/zero-fill is needed.
        let width = self.plan.max_width;
        if ws.a.len() < n * width {
            ws.a.resize(n * width, 0.0);
            ws.b.resize(n * width, 0.0);
        }
        ws.a[..xs.len()].copy_from_slice(xs);
        let n_layers = self.layers.len();
        for (l, (layer, wt)) in self.layers.iter().zip(&self.plan.wt).enumerate() {
            let (din, dout) = (layer.in_dim, layer.out_dim);
            #[cfg(target_arch = "x86_64")]
            if self.plan.use_avx2 {
                // SAFETY: `use_avx2` is set only after runtime feature
                // detection.
                unsafe { layer_kernel_avx2(&ws.a, &mut ws.b, wt, &layer.b, n, din) };
            } else {
                layer_kernel(&ws.a, &mut ws.b, wt, &layer.b, n, din);
            }
            #[cfg(not(target_arch = "x86_64"))]
            layer_kernel(&ws.a, &mut ws.b, wt, &layer.b, n, din);
            if l + 1 < n_layers {
                for v in ws.b[..n * dout].iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut ws.a, &mut ws.b);
        }
        // The output layer has width 1: `a` now holds one scalar per row.
        out.extend(
            ws.a[..n]
                .iter()
                .map(|&z| (z * self.y_std + self.y_mean).max(0.0)),
        );
    }

    /// The pre-batching scalar forward pass: one sample, fresh `Vec`s per
    /// layer. Kept as the reference implementation — benches compare the
    /// batched engine against it, and the property tests use it as an
    /// allocation-independent oracle. Accumulates in the same order as the
    /// batched kernel, so both agree bit for bit.
    pub fn predict_one_scalar(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.layers[0].in_dim,
            "feature dimension mismatch — retrain the model (stale cache?)"
        );
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        let n_layers = self.layers.len();
        for (l, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if l + 1 < n_layers {
                for v in next.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (cur[0] * self.y_std + self.y_mean).max(0.0)
    }

    /// Layer widths `[in, hidden..., 1]` (for persistence and stats).
    pub fn dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.layers.iter().map(|l| l.in_dim).collect();
        dims.push(1);
        dims
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// In-memory model size in bytes (f64 parameters), the §7.8 footprint.
    pub fn size_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    pub(crate) fn target_scaling(&self) -> (f64, f64) {
        (self.y_mean, self.y_std)
    }

    pub(crate) fn from_raw(
        dims: &[usize],
        params: &[f64],
        y_mean: f64,
        y_std: f64,
    ) -> Result<Mlp, String> {
        if dims.len() < 2 {
            return Err("need at least input and output dims".into());
        }
        let mut rng = SeededRng::new(0);
        let mut layers = Vec::new();
        let mut off = 0;
        for w in dims.windows(2) {
            let mut layer = Dense::new(w[0], w[1], &mut rng);
            let nw = layer.w.len();
            let nb = layer.b.len();
            if off + nw + nb > params.len() {
                return Err("parameter blob too short".into());
            }
            layer.w.copy_from_slice(&params[off..off + nw]);
            off += nw;
            layer.b.copy_from_slice(&params[off..off + nb]);
            off += nb;
            layers.push(layer);
        }
        if off != params.len() {
            return Err("parameter blob too long".into());
        }
        Ok(Mlp::assemble(layers, y_mean, y_std))
    }

    pub(crate) fn raw_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }
}

impl LatencyModel for Mlp {
    fn predict_one(&self, x: &[f64]) -> f64 {
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let mut single = std::mem::take(&mut ws.single);
            single.clear();
            self.forward_rows(x, 1, ws, &mut single);
            let y = single[0];
            ws.single = single;
            y
        })
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            self.forward_rows(xs, n, ws, out);
        });
    }

    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        WORKSPACE.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let mut packed = std::mem::take(&mut ws.packed);
            packed.clear();
            for x in xs {
                packed.extend_from_slice(x);
            }
            let mut out = Vec::with_capacity(xs.len());
            self.forward_rows(&packed, xs.len(), ws, &mut out);
            ws.packed = packed;
            out
        })
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3*x0 + relu-ish non-linearity of x1.
    fn synthetic(n: usize, seed: u64) -> Dataset {
        let mut rng = SeededRng::new(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0 = rng.f64();
            let x1 = rng.f64();
            let y = 10.0 + 30.0 * x0 + 20.0 * (x1 - 0.5).max(0.0);
            d.push(vec![x0, x1], y);
        }
        d
    }

    #[test]
    fn learns_nonlinear_function() {
        let train = synthetic(2000, 1);
        let test = synthetic(300, 2);
        let mlp = Mlp::train(
            &train,
            &MlpConfig {
                hidden: vec![32, 32, 32],
                epochs: 60,
                batch_size: 64,
                lr: 2e-3,
                seed: 3,
                quantile: None,
            },
        );
        let mape = crate::eval::mape(&mlp, &test);
        assert!(mape < 0.05, "mape {mape}");
    }

    #[test]
    fn deterministic_training() {
        let d = synthetic(200, 4);
        let cfg = MlpConfig {
            epochs: 5,
            ..MlpConfig::default()
        };
        let a = Mlp::train(&d, &cfg);
        let b = Mlp::train(&d, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_sized_model_is_small() {
        // §7.8: the predictor occupies ~14 kB. A 23-input 3x32 MLP:
        // 23*32+32 + 32*32+32 + 32*32+32 + 32+1 = ~2.9k params * 4 B (f32
        // in the paper) ≈ 12 kB; we store f64.
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![0.1 * i as f64; 23], i as f64);
        }
        let mlp = Mlp::train(
            &d,
            &MlpConfig {
                epochs: 1,
                ..MlpConfig::default()
            },
        );
        assert_eq!(mlp.param_count(), 23 * 32 + 32 + 32 * 32 + 32 + 32 * 32 + 32 + 32 + 1);
        assert!(mlp.size_bytes() < 30_000);
    }

    #[test]
    fn quantile_training_biases_upward() {
        // With symmetric noise around the mean, a q90 model should predict
        // above the mean most of the time.
        let mut rng = SeededRng::new(9);
        let mut d = Dataset::new();
        for _ in 0..3000 {
            let x = rng.f64();
            let y = 20.0 + 10.0 * x + 2.0 * rng.normal();
            d.push(vec![x], y.max(0.1));
        }
        let mean_model = Mlp::train(&d, &MlpConfig { epochs: 40, ..MlpConfig::default() });
        let q90 = Mlp::train(
            &d,
            &MlpConfig {
                epochs: 40,
                quantile: Some(0.9),
                ..MlpConfig::default()
            },
        );
        let mut above = 0;
        for i in 0..20 {
            let x = [i as f64 / 20.0];
            if q90.predict_one(&x) > mean_model.predict_one(&x) {
                above += 1;
            }
        }
        assert!(above >= 16, "q90 above mean at {above}/20 points");
        // And it covers ~90% of the observed targets.
        let covered = d
            .x
            .iter()
            .zip(&d.y)
            .filter(|(x, &y)| q90.predict_one(x) >= y)
            .count();
        let frac = covered as f64 / d.len() as f64;
        assert!((0.80..0.97).contains(&frac), "coverage {frac}");
    }

    #[test]
    fn predictions_are_clamped_non_negative() {
        let d = synthetic(100, 5);
        let mlp = Mlp::train(&d, &MlpConfig { epochs: 2, ..MlpConfig::default() });
        assert!(mlp.predict_one(&[-100.0, -100.0]) >= 0.0);
    }

    #[test]
    fn raw_roundtrip() {
        let d = synthetic(100, 6);
        let mlp = Mlp::train(&d, &MlpConfig { epochs: 3, ..MlpConfig::default() });
        let rebuilt =
            Mlp::from_raw(&mlp.dims(), &mlp.raw_params(), mlp.y_mean, mlp.y_std).unwrap();
        // Adam moments are not persisted, so compare behaviour, not state.
        for i in 0..10 {
            let x = [i as f64 / 10.0, 1.0 - i as f64 / 10.0];
            assert_eq!(mlp.predict_one(&x), rebuilt.predict_one(&x));
        }
        assert_eq!(mlp.dims(), rebuilt.dims());
    }
}
