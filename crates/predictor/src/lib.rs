//! Overlap-aware latency prediction (§5 of the paper).
//!
//! Pipeline: [`sampling`] draws operator groups the scheduler can actually
//! produce (Fig. 9); [`profiler`] measures them on the GPU simulator
//! (§5.2's 42 000 × 100 campaign); [`features`] encodes them as Fig. 8
//! vectors; and three predictors train on the result — the paper's winning
//! 3×32 [`mlp::Mlp`] plus the [`linreg`] and [`svr`] baselines it is
//! compared against in Fig. 10. [`eval`] computes Eq. 1's MAPE and the
//! cross-validation bar; [`persist`] freezes the trained model to disk
//! (§7.8's ≈ 14 kB artifact).
//!
//! All predictors implement [`LatencyModel`], the interface the scheduler's
//! multi-way search consumes (batched prediction maps directly onto the
//! paper's "feed the duration model with batched input features").
//! [`affinity`] adds §7.8's deployment planning: overlap-hostile pairs are
//! detected from the profiling data and never deployed together.

pub mod affinity;
pub mod conformal;
pub mod dataset;
pub mod eval;
pub mod features;
pub mod linreg;
pub mod mlp;
pub mod persist;
pub mod profiler;
pub mod sampling;
pub mod svr;

pub use affinity::{
    overlap_affinity, peak_affinity, plan_service_groups, PairAffinity, NO_OVERLAP_GAIN,
};
pub use dataset::Dataset;
pub use features::{
    encode_features, encode_features_with_ops, feature_slot_of, GroupEntry, GroupSpec,
    FEATURE_DIM, MAX_COLOCATED, MODEL_SLOT_BASE, SLOT_WIDTH,
};
pub use conformal::{width_of_row, ConformalModel, StratifiedConformal, CERT_TAUS};
pub use linreg::LinearRegression;
pub use mlp::{Mlp, MlpConfig, QuantileMlp};
pub use profiler::{profile_group, profile_groups, ProfiledGroup};
pub use sampling::{all_pairs, paper_multiway_sets, sample_group, sample_groups};
pub use svr::{LinearSvr, SvrConfig};

/// A trained duration model for operator groups.
pub trait LatencyModel: Send + Sync {
    /// Predict the group latency (ms) for one Fig. 8 feature vector.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predict `n` candidates packed row-major in one contiguous buffer
    /// (`xs.len() == n * dim`), writing the `n` predictions into `out`
    /// (cleared first). This is the multi-way search hot path: the caller
    /// reuses both buffers across prediction rounds, so an implementation
    /// that overrides this can run the whole round allocation-free.
    ///
    /// The default shims each row through [`predict_one`].
    ///
    /// # Panics
    /// Panics when `xs.len()` is not a multiple of `n`.
    ///
    /// [`predict_one`]: LatencyModel::predict_one
    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        out.clear();
        if n == 0 {
            assert!(xs.is_empty(), "rows supplied but n == 0");
            return;
        }
        assert_eq!(xs.len() % n, 0, "xs.len() {} not a multiple of n {n}", xs.len());
        let dim = xs.len() / n;
        out.extend(xs.chunks_exact(dim).map(|row| self.predict_one(row)));
    }

    /// Predict a batch of candidates at once — convenience wrapper over
    /// [`predict_into`] for callers that hold row vectors.
    ///
    /// [`predict_into`]: LatencyModel::predict_into
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Batched node-scoring entry point for cluster routing: predict `n`
    /// candidate rows in **one** [`predict_into`] forward, then scale
    /// prediction `i` by `derates[i]` — the candidate node's latency
    /// multiplier relative to the hardware this model was trained on.
    /// Scoring N heterogeneous nodes therefore costs exactly one batched
    /// forward, never N scalar ones.
    ///
    /// # Panics
    /// Panics when `derates.len() != n` (and, via [`predict_into`], when
    /// `xs.len()` is not a multiple of `n`).
    ///
    /// [`predict_into`]: LatencyModel::predict_into
    fn predict_derated_into(&self, xs: &[f64], n: usize, derates: &[f64], out: &mut Vec<f64>) {
        assert_eq!(derates.len(), n, "one derate per candidate row");
        self.predict_into(xs, n, out);
        for (p, &d) in out.iter_mut().zip(derates) {
            *p *= d;
        }
    }

    /// Display name for figures.
    fn name(&self) -> &'static str;
}

/// A latency model scaled by a constant factor — a reference-hardware
/// predictor viewed through a heterogeneous node's derate (e.g. the V100
/// unified MLP serving as an A100 or MIG-slice predictor). Batched calls
/// forward to the inner model unchanged, so the scaling is allocation-free
/// and preserves the inner model's one-forward batching.
pub struct DeratedModel {
    inner: std::sync::Arc<dyn LatencyModel>,
    factor: f64,
}

impl DeratedModel {
    /// Wrap `inner`, multiplying every prediction by `factor`.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn new(inner: std::sync::Arc<dyn LatencyModel>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "derate factor must be finite and positive, got {factor}"
        );
        Self { inner, factor }
    }

    /// The scaling factor applied to the inner model's predictions.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl LatencyModel for DeratedModel {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.inner.predict_one(x) * self.factor
    }

    fn predict_into(&self, xs: &[f64], n: usize, out: &mut Vec<f64>) {
        self.inner.predict_into(xs, n, out);
        for p in out.iter_mut() {
            *p *= self.factor;
        }
    }

    fn name(&self) -> &'static str {
        "derated"
    }
}

/// An oracle predictor that queries the GPU simulator's noise-free latency
/// directly. Not available in a real deployment (it *is* the hardware) —
/// used in tests and as an upper bound in the ablation benches.
pub struct OracleModel {
    lib: std::sync::Arc<dnn_models::ModelLibrary>,
    gpu: gpu_sim::GpuSpec,
}

impl OracleModel {
    /// Create an oracle for `gpu`.
    pub fn new(lib: std::sync::Arc<dnn_models::ModelLibrary>, gpu: gpu_sim::GpuSpec) -> Self {
        Self { lib, gpu }
    }

    /// Exact (noise-free) group latency.
    pub fn measure(&self, spec: &GroupSpec) -> f64 {
        gpu_sim::run_group(
            &self.gpu,
            &gpu_sim::NoiseModel::disabled(),
            0,
            &spec.streams(&self.lib),
        )
        .total_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl LatencyModel for Doubler {
        fn predict_one(&self, x: &[f64]) -> f64 {
            2.0 * x[0]
        }
        fn name(&self) -> &'static str {
            "doubler"
        }
    }

    #[test]
    fn default_batch_maps_one_by_one() {
        let xs = vec![vec![1.0], vec![3.0]];
        assert_eq!(Doubler.predict_batch(&xs), vec![2.0, 6.0]);
    }

    #[test]
    fn derated_batch_scales_each_row() {
        let mut out = Vec::new();
        Doubler.predict_derated_into(&[1.0, 3.0, 5.0], 3, &[1.0, 2.0, 0.5], &mut out);
        assert_eq!(out, vec![2.0, 12.0, 5.0]);
        let derated = DeratedModel::new(std::sync::Arc::new(Doubler), 3.0);
        assert_eq!(derated.predict_one(&[2.0]), 12.0);
        derated.predict_into(&[1.0, 3.0], 2, &mut out);
        assert_eq!(out, vec![6.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "one derate per candidate row")]
    fn derated_batch_validates_lengths() {
        let mut out = Vec::new();
        Doubler.predict_derated_into(&[1.0, 3.0], 2, &[1.0], &mut out);
    }

    #[test]
    fn oracle_measures_groups() {
        let lib = std::sync::Arc::new(dnn_models::ModelLibrary::new());
        let oracle = OracleModel::new(lib.clone(), gpu_sim::GpuSpec::a100());
        let g = sample_groups(&[dnn_models::ModelId::ResNet50], 1, &lib, 1);
        assert!(oracle.measure(&g[0]) > 0.0);
    }
}
