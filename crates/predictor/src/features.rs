//! Fig. 8 feature encoding for operator groups.
//!
//! A sample describes one *operator group*: up to [`MAX_COLOCATED`] queries,
//! each contributing a contiguous operator range `[op_start, op_end)` of its
//! model. The feature vector is
//!
//! ```text
//! [ model multi-hot | slot0: ops, ope, bs, seqlen | slot1 | slot2 | slot3 ]
//! ```
//!
//! with slots filled in model-index order (the paper's "Model 4, Model 7"
//! layout), operator indices normalised by the model's operator count, batch
//! by 32 and sequence length by 64. Empty slots are zero. One fixed layout
//! serves pairs, triplets and quadruplets, which is what lets Abacus train a
//! *single* unified duration model (§4).

use dnn_models::{ModelId, ModelLibrary, QueryInput, MODEL_COUNT};

/// Maximum number of co-located services in one operator group
/// (the paper evaluates up to quadruplet-wise deployment).
pub const MAX_COLOCATED: usize = 4;

/// Features per slot: start op, end op, batch size, sequence length.
pub const SLOT_WIDTH: usize = 4;

/// Offset of the first slot: the multi-hot model bitmap comes first.
pub const MODEL_SLOT_BASE: usize = MODEL_COUNT;

/// Total feature dimension.
pub const FEATURE_DIM: usize = MODEL_SLOT_BASE + MAX_COLOCATED * SLOT_WIDTH;

/// One query's contribution to an operator group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupEntry {
    /// Which model the query belongs to.
    pub model: ModelId,
    /// First operator (inclusive) scheduled in this group.
    pub op_start: usize,
    /// Last operator (exclusive).
    pub op_end: usize,
    /// The query's input.
    pub input: QueryInput,
}

impl GroupEntry {
    /// Number of operators this entry schedules.
    pub fn len(&self) -> usize {
        self.op_end - self.op_start
    }

    /// True when the entry schedules no operators.
    pub fn is_empty(&self) -> bool {
        self.op_end == self.op_start
    }
}

/// A full operator group: the unit both the profiler measures and the
/// predictor scores.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Entries, at most [`MAX_COLOCATED`], with pairwise-distinct models
    /// (each service processes one query at a time).
    pub entries: Vec<GroupEntry>,
}

/// Write the Fig. 8 feature vector for `entries` into `out` without
/// allocating. `out` must hold exactly [`FEATURE_DIM`] values; every slot
/// is overwritten (unused slots are zeroed), so the buffer can be reused
/// across candidates — this is the multi-way search's per-probe encoder.
pub fn encode_features(entries: &[GroupEntry], lib: &ModelLibrary, out: &mut [f64]) {
    let mut ops = [0usize; MAX_COLOCATED];
    assert!(
        !entries.is_empty() && entries.len() <= MAX_COLOCATED,
        "a group holds 1..={MAX_COLOCATED} entries"
    );
    for (n, e) in ops.iter_mut().zip(entries) {
        *n = lib.graph(e.model, e.input).len();
    }
    encode_features_with_ops(entries, &ops[..entries.len()], out);
}

/// [`encode_features`] with the per-entry operator counts supplied by the
/// caller instead of looked up per entry: `n_ops[i]` must equal
/// `lib.graph(entries[i].model, entries[i].input).len()`. The scheduler's
/// search already holds each query's operator count, so this variant keeps
/// per-candidate encoding free of hash-map lookups; the produced vector is
/// bit-identical to [`encode_features`] for matching counts.
pub fn encode_features_with_ops(entries: &[GroupEntry], n_ops: &[usize], out: &mut [f64]) {
    assert_eq!(out.len(), FEATURE_DIM, "feature buffer has the wrong size");
    assert!(
        !entries.is_empty() && entries.len() <= MAX_COLOCATED,
        "a group holds 1..={MAX_COLOCATED} entries"
    );
    assert_eq!(entries.len(), n_ops.len(), "one operator count per entry");
    out.fill(0.0);
    // Slots in model-index order, as the paper's layout prescribes. The
    // entry count is at most MAX_COLOCATED (4): an insertion sort over a
    // stack-resident index array beats allocating and sorting a Vec.
    let mut order = [0usize; MAX_COLOCATED];
    for (i, slot) in order.iter_mut().enumerate().take(entries.len()) {
        *slot = i;
    }
    let order = &mut order[..entries.len()];
    for i in 1..order.len() {
        let mut j = i;
        while j > 0 && entries[order[j - 1]].model.index() > entries[order[j]].model.index() {
            order.swap(j - 1, j);
            j -= 1;
        }
    }
    for (slot, &idx) in order.iter().enumerate() {
        let e = &entries[idx];
        out[e.model.index()] = 1.0;
        let n_ops = n_ops[idx] as f64;
        let base = MODEL_SLOT_BASE + slot * SLOT_WIDTH;
        out[base] = e.op_start as f64 / n_ops;
        out[base + 1] = e.op_end as f64 / n_ops;
        out[base + 2] = f64::from(e.input.batch) / 32.0;
        out[base + 3] = f64::from(e.input.seq) / 64.0;
    }
}

/// Debug-build validation of group entries: operator ranges within the
/// model graph and pairwise-distinct models (checked with a bitmask — one
/// O(n) pass, no allocation). Compiled out of release builds, where the
/// search constructs thousands of candidates per second.
fn debug_assert_valid_entries(entries: &[GroupEntry], lib: &ModelLibrary) {
    if cfg!(debug_assertions) {
        let mut seen = 0u32;
        for (i, e) in entries.iter().enumerate() {
            let n_ops = lib.graph(e.model, e.input).len();
            debug_assert!(
                e.op_start <= e.op_end && e.op_end <= n_ops,
                "entry {i}: invalid range {}..{} of {n_ops}",
                e.op_start,
                e.op_end
            );
            let bit = 1u32 << e.model.index();
            debug_assert!(seen & bit == 0, "duplicate model {:?}", e.model);
            seen |= bit;
        }
    }
}

/// The slot index (0-based, in the Fig. 8 layout) that `model` occupies
/// among `entries`: its rank by model index. Lets the search patch a
/// single entry's features in place between probes.
///
/// # Panics
/// Panics when `model` is not among `entries`.
pub fn feature_slot_of(entries: &[GroupEntry], model: ModelId) -> usize {
    assert!(
        entries.iter().any(|e| e.model == model),
        "model {model:?} not in group"
    );
    entries
        .iter()
        .filter(|e| e.model.index() < model.index())
        .count()
}

impl GroupSpec {
    /// Create a group. Structural validation (entry count, model
    /// uniqueness, operator ranges) is a `debug_assert!`-only check: the
    /// scheduler's search constructs specs in its hot path and must not
    /// pay an O(n²) scan per candidate in release builds.
    pub fn new(entries: Vec<GroupEntry>, lib: &ModelLibrary) -> GroupSpec {
        assert!(
            !entries.is_empty() && entries.len() <= MAX_COLOCATED,
            "a group holds 1..={MAX_COLOCATED} entries"
        );
        debug_assert_valid_entries(&entries, lib);
        GroupSpec { entries }
    }

    /// Encode as the Fig. 8 feature vector.
    pub fn features(&self, lib: &ModelLibrary) -> Vec<f64> {
        let mut x = vec![0.0; FEATURE_DIM];
        encode_features(&self.entries, lib, &mut x);
        x
    }

    /// Lower every entry to its kernel sequence, in the same order as
    /// `entries`.
    pub fn streams(&self, lib: &ModelLibrary) -> Vec<Vec<gpu_sim::KernelDesc>> {
        self.entries
            .iter()
            .map(|e| lib.graph(e.model, e.input).kernels_range(e.op_start, e.op_end))
            .collect()
    }

    /// Sum of all entries' solo latencies on `gpu` — the sequential-execution
    /// lower bound used for sanity checks and the sync-based ablation.
    pub fn sequential_ms(&self, lib: &ModelLibrary, gpu: &gpu_sim::GpuSpec) -> f64 {
        self.entries
            .iter()
            .map(|e| {
                lib.graph(e.model, e.input)
                    .solo_ms_range(gpu, e.op_start, e.op_end)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ModelLibrary {
        ModelLibrary::new()
    }

    fn entry(model: ModelId, s: usize, e: usize, b: u32, q: u32) -> GroupEntry {
        GroupEntry {
            model,
            op_start: s,
            op_end: e,
            input: QueryInput::new(b, q),
        }
    }

    #[test]
    fn feature_layout() {
        let lib = lib();
        let g = GroupSpec::new(
            vec![
                entry(ModelId::Bert, 0, 50, 16, 32),
                entry(ModelId::ResNet50, 10, 125, 8, 1),
            ],
            &lib,
        );
        let x = g.features(&lib);
        assert_eq!(x.len(), FEATURE_DIM);
        // Multi-hot: Res50 (index 0) and Bert (index 6).
        assert_eq!(x[0], 1.0);
        assert_eq!(x[6], 1.0);
        assert_eq!(x[1..6].iter().sum::<f64>() + x[7], 0.0);
        // Slot 0 = Res50 (lower model index).
        let b = MODEL_SLOT_BASE;
        let n50 = lib.graph(ModelId::ResNet50, QueryInput::new(8, 1)).len() as f64;
        assert!((x[b] - 10.0 / n50).abs() < 1e-12);
        assert!((x[b + 1] - 125.0 / n50).abs() < 1e-12);
        assert!((x[b + 2] - 0.25).abs() < 1e-12);
        // Slot 1 = Bert.
        assert!((x[b + SLOT_WIDTH + 2] - 0.5).abs() < 1e-12); // bs 16/32
        assert!((x[b + SLOT_WIDTH + 3] - 0.5).abs() < 1e-12); // seq 32/64
        // Slots 2 and 3 are empty.
        assert!(x[b + 2 * SLOT_WIDTH..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn slot_order_is_input_order_independent() {
        let lib = lib();
        let a = GroupSpec::new(
            vec![entry(ModelId::Vgg16, 0, 10, 4, 1), entry(ModelId::ResNet101, 0, 20, 4, 1)],
            &lib,
        );
        let b = GroupSpec::new(
            vec![entry(ModelId::ResNet101, 0, 20, 4, 1), entry(ModelId::Vgg16, 0, 10, 4, 1)],
            &lib,
        );
        assert_eq!(a.features(&lib), b.features(&lib));
    }

    #[test]
    fn streams_match_ranges() {
        let lib = lib();
        let g = GroupSpec::new(vec![entry(ModelId::ResNet50, 5, 30, 4, 1)], &lib);
        let s = g.streams(&lib);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 25);
    }

    #[test]
    fn sequential_ms_adds_up() {
        let lib = lib();
        let gpu = gpu_sim::GpuSpec::a100();
        let g = GroupSpec::new(
            vec![
                entry(ModelId::ResNet50, 0, 60, 8, 1),
                entry(ModelId::Vgg19, 0, 24, 8, 1),
            ],
            &lib,
        );
        let expect = lib.graph(ModelId::ResNet50, QueryInput::new(8, 1)).solo_ms_range(&gpu, 0, 60)
            + lib.graph(ModelId::Vgg19, QueryInput::new(8, 1)).solo_ms(&gpu);
        assert!((g.sequential_ms(&lib, &gpu) - expect).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate model")]
    fn duplicate_models_rejected() {
        let lib = lib();
        let _ = GroupSpec::new(
            vec![entry(ModelId::Bert, 0, 5, 4, 8), entry(ModelId::Bert, 0, 5, 4, 8)],
            &lib,
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid range")]
    fn bad_range_rejected() {
        let lib = lib();
        let _ = GroupSpec::new(vec![entry(ModelId::Vgg16, 0, 999, 4, 1)], &lib);
    }
}
