//! Integration of the cluster layer (§7.6): trace synthesis → routing →
//! per-GPU serving → timelines, for both systems.

use cluster::{
    build_timeline, cluster_workload, run_cluster, summarize, AutoscalePolicy, ClusterConfig,
    ClusterSystem, NodeSignals, ScaleDecision,
};
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{train_unified, TrainerConfig};
use std::sync::Arc;
use workload::{synthesize_maf_like, RateTrace};

fn trained_quad(lib: &Arc<ModelLibrary>, gpu: &GpuSpec) -> Arc<dyn LatencyModel> {
    let (mlp, _) = train_unified(
        &[vec![
            ModelId::ResNet101,
            ModelId::ResNet152,
            ModelId::Vgg19,
            ModelId::Bert,
        ]],
        lib,
        gpu,
        &NoiseModel::calibrated(),
        &TrainerConfig {
            samples_per_set: 500,
            runs_per_group: 3,
            mlp: predictor::MlpConfig {
                epochs: 80,
                ..predictor::MlpConfig::default()
            },
            seed: 31,
        },
    );
    Arc::new(mlp)
}

/// Both systems under a bursty trace: identical arrivals, full accounting,
/// Clockwork never completes past-deadline work, and the timeline follows
/// the offered load.
#[test]
fn cluster_replay_full_accounting() {
    let lib = Arc::new(ModelLibrary::new());
    let v100 = GpuSpec::v100();
    let noise = NoiseModel::calibrated();
    let minutes = 3;
    let trace = synthesize_maf_like(minutes, 120.0, 5);
    let cfg = ClusterConfig {
        nodes: 1,
        gpus_per_node: 3,
        ..ClusterConfig::paper(trace, 17)
    };
    let (arrivals, inputs) = cluster_workload(&cfg, &lib);
    let reqs: Vec<u32> = inputs.iter().map(|i| i.batch).collect();
    let mlp = trained_quad(&lib, &v100);

    let abacus = run_cluster(
        ClusterSystem::AbacusK8s,
        &cfg,
        &lib,
        &v100,
        &noise,
        Some(mlp),
    );
    let clockwork = run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &v100, &noise, None);
    assert_eq!(abacus.len(), arrivals.len());
    assert_eq!(clockwork.len(), arrivals.len());

    // Clockwork's admission control: completed queries are within QoS (a
    // sliver of tolerance for noise beyond the admission margin).
    for r in &clockwork {
        if r.outcome == abacus_metrics::QueryOutcome::Completed {
            assert!(r.latency_ms <= cfg.qos_ms * 1.02, "{}", r.latency_ms);
        }
    }

    // The achieved timeline tracks offered load when not saturated.
    let tl = build_timeline(&arrivals, &reqs, &abacus, minutes);
    assert_eq!(tl.len(), minutes);
    for p in &tl[..minutes - 1] {
        // Within 35% of offered (completions can spill across minutes).
        assert!(
            p.achieved_rps > 0.6 * p.offered_rps,
            "minute {}: {} vs {}",
            p.minute,
            p.achieved_rps,
            p.offered_rps
        );
    }

    let s = summarize(&abacus, 0, minutes);
    assert!(s.mean_rps > 0.0);
    assert!(s.p99_ms > 0.0);
}

/// More GPUs means more completions under overload (the routing layer
/// actually spreads load).
#[test]
fn scaling_out_adds_capacity() {
    let lib = Arc::new(ModelLibrary::new());
    let v100 = GpuSpec::v100();
    let noise = NoiseModel::calibrated();
    let trace = RateTrace::new(vec![260.0; 2]);
    let completed = |gpus: usize| {
        let cfg = ClusterConfig {
            nodes: 1,
            gpus_per_node: gpus,
            ..ClusterConfig::paper(trace.clone(), 7)
        };
        run_cluster(ClusterSystem::Clockwork, &cfg, &lib, &v100, &noise, None)
            .iter()
            .filter(|r| r.outcome == abacus_metrics::QueryOutcome::Completed)
            .count()
    };
    let two = completed(2);
    let four = completed(4);
    assert!(four > two, "4 gpus {four} vs 2 gpus {two}");
}

/// The §7.9 autoscaler consumes the signals a cluster run produces.
#[test]
fn autoscaler_reacts_to_cluster_state() {
    let policy = AutoscalePolicy::default();
    // A saturated VGG-heavy node: overlap gain near 1 → scale out.
    let saturated = NodeSignals {
        busy_fraction: 0.99,
        violation_ratio: 0.15,
        overlap_gain: 1.05,
    };
    assert_eq!(policy.decide(&saturated), ScaleDecision::ScaleOut);
    // A ResNet-style node with overlap headroom → scale up density.
    let roomy = NodeSignals {
        busy_fraction: 0.92,
        violation_ratio: 0.08,
        overlap_gain: 1.6,
    };
    assert_eq!(policy.decide(&roomy), ScaleDecision::ScaleUp);
    assert_eq!(
        policy.decide_fleet(&[saturated, roomy]),
        ScaleDecision::ScaleOut
    );
}
