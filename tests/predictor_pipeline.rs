//! Integration of the §5 pipeline: sampling → profiling → feature encoding
//! → training → accuracy, including the paper's model-family comparison and
//! the §5.2 determinism statistics.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::{
    eval, persist, sample_groups, ConformalModel, Dataset, LinearRegression, LinearSvr, Mlp,
    MlpConfig, QuantileMlp, SvrConfig, CERT_TAUS,
};
use serving::{collect_profiles, TrainerConfig};
use std::sync::Arc;
use workload::SeededRng;

fn profiles_for(pair: [ModelId; 2], samples: usize) -> (Arc<ModelLibrary>, Dataset) {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let cfg = TrainerConfig {
        samples_per_set: samples,
        runs_per_group: 5,
        seed: 13,
        ..TrainerConfig::fast()
    };
    let profiles = collect_profiles(&pair, &lib, &gpu, &NoiseModel::calibrated(), &cfg, 0);
    let data = Dataset::from_profiles(&profiles, &lib);
    (lib, data)
}

/// Fig. 10's ordering: the MLP beats both linear families by a wide margin
/// on real profiled data.
#[test]
fn mlp_beats_linear_families() {
    let (_lib, data) = profiles_for([ModelId::ResNet152, ModelId::Bert], 900);
    let mut rng = SeededRng::new(1);
    let (train, test) = data.split(0.8, &mut rng);
    let mlp = Mlp::train(
        &train,
        &MlpConfig {
            epochs: 120,
            ..MlpConfig::default()
        },
    );
    let lr = LinearRegression::fit(&train, 1e-3);
    let svr = LinearSvr::fit(&train, &SvrConfig::default());
    let e_mlp = eval::mape(&mlp, &test);
    let e_lr = eval::mape(&lr, &test);
    let e_svr = eval::mape(&svr, &test);
    assert!(e_mlp < 0.10, "mlp {e_mlp}");
    assert!(e_lr > 2.0 * e_mlp, "lr {e_lr} vs mlp {e_mlp}");
    assert!(e_svr > 2.0 * e_mlp, "svr {e_svr} vs mlp {e_mlp}");
}

/// §5.2: group latencies are deterministic — std/mean stays in the
/// single-digit-percent band the paper measures.
#[test]
fn group_latency_determinism_statistics() {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let cfg = TrainerConfig {
        samples_per_set: 300,
        runs_per_group: 15,
        seed: 3,
        ..TrainerConfig::fast()
    };
    let profiles = collect_profiles(
        &[ModelId::ResNet101, ModelId::Vgg16],
        &lib,
        &gpu,
        &NoiseModel::calibrated(),
        &cfg,
        0,
    );
    let cvs: Vec<f64> = profiles.iter().map(|p| p.std_ms / p.mean_ms).collect();
    let mean_cv = abacus_metrics::mean(&cvs);
    assert!(
        (0.015..0.08).contains(&mean_cv),
        "mean std/mean {mean_cv} out of the paper's band"
    );
}

/// A trained model survives a save/load round trip with identical
/// predictions (the deployment path: train offline, load at serving time).
#[test]
fn trained_model_persists() {
    let (lib, data) = profiles_for([ModelId::ResNet50, ModelId::InceptionV3], 300);
    let mlp = Mlp::train(&data, &MlpConfig::fast());
    let path = std::env::temp_dir().join("abacus_it_persist/model.mlp");
    persist::save(&mlp, &path).unwrap();
    let loaded = persist::load(&path).unwrap();
    let specs = sample_groups(&[ModelId::ResNet50, ModelId::InceptionV3], 20, &lib, 9);
    for s in &specs {
        let x = s.features(&lib);
        use predictor::LatencyModel;
        assert_eq!(mlp.predict_one(&x), loaded.predict_one(&x));
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Triplet and quadruplet groups encode and train through the same unified
/// feature layout (§5.5's "4.9% and 6.4%" study).
#[test]
fn multiway_groups_train_through_unified_layout() {
    let lib = Arc::new(ModelLibrary::new());
    let gpu = GpuSpec::a100();
    let cfg = TrainerConfig {
        samples_per_set: 400,
        runs_per_group: 3,
        seed: 21,
        ..TrainerConfig::fast()
    };
    let mut data = Dataset::new();
    for (i, set) in [
        vec![ModelId::ResNet101, ModelId::ResNet152, ModelId::Bert],
        vec![
            ModelId::ResNet101,
            ModelId::ResNet152,
            ModelId::Vgg19,
            ModelId::Bert,
        ],
    ]
    .iter()
    .enumerate()
    {
        let profiles = collect_profiles(set, &lib, &gpu, &NoiseModel::calibrated(), &cfg, i as u64);
        data.extend(Dataset::from_profiles(&profiles, &lib));
    }
    assert_eq!(data.dim(), predictor::FEATURE_DIM);
    let mut rng = SeededRng::new(2);
    let (train, test) = data.split(0.8, &mut rng);
    let mlp = Mlp::train(
        &train,
        &MlpConfig {
            epochs: 100,
            ..MlpConfig::default()
        },
    );
    let err = eval::mape(&mlp, &test);
    assert!(err < 0.12, "multiway mape {err}");
}

/// The certification stack on *real profiled data*: quantile heads train
/// on a proper-train slice, split-conformal calibrates on a held-out
/// slice, and the resulting p95 upper bound covers a disjoint test slice
/// at (at least) its nominal rate, with bounds monotone in alpha.
#[test]
fn conformal_upper_bounds_cover_profiled_latencies() {
    let (_lib, data) = profiles_for([ModelId::ResNet50, ModelId::ResNet152], 900);
    let mut rng = SeededRng::new(7);
    let (work, test) = data.split(0.75, &mut rng);
    let (train, calib) = work.split(0.6, &mut rng);
    let heads = QuantileMlp::train(
        &train,
        &MlpConfig {
            epochs: 120,
            ..MlpConfig::default()
        },
        &CERT_TAUS,
    );
    let p90 = ConformalModel::calibrate(heads, &calib, 0.10);
    let p95 = p90.with_alpha(0.05);
    let p99 = p90.with_alpha(0.01);
    let n = test.len();
    let (mut c90, mut c95, mut c99) = (0usize, 0, 0);
    let mut bounds = Vec::new();
    for i in 0..n {
        let x = &test.x[i];
        use predictor::LatencyModel;
        let (b90, b95, b99) = (
            p90.predict_one(x),
            p95.predict_one(x),
            p99.predict_one(x),
        );
        assert!(b90 <= b95 && b95 <= b99, "bounds not monotone in alpha");
        bounds.push(b95);
        c90 += usize::from(test.y[i] <= b90);
        c95 += usize::from(test.y[i] <= b95);
        c99 += usize::from(test.y[i] <= b99);
    }
    // Finite-sample bands: split conformal guarantees coverage >= 1-alpha
    // *marginally over calibration draws*; a single split of ~225 test
    // points wobbles by a few points around nominal.
    let cov95 = c95 as f64 / n as f64;
    assert!(
        (0.88..=1.0).contains(&cov95),
        "p95 coverage {cov95} outside tolerance band"
    );
    let (cov90, cov99) = (c90 as f64 / n as f64, c99 as f64 / n as f64);
    assert!(cov90 >= 0.82, "p90 coverage too low: {cov90}");
    assert!(cov99 >= 0.95, "p99 coverage too low: {cov99}");
    assert!(cov90 <= cov95 && cov95 <= cov99, "coverage not monotone");
    // Batched entry point agrees with the scalar path bit for bit.
    let flat: Vec<f64> = test.x.iter().flatten().copied().collect();
    let mut batched = Vec::new();
    p95.predict_upper_into(&flat, n, &mut batched);
    assert_eq!(batched, bounds);
}

/// The predictor is *accurate about overlap*: predicted group durations are
/// systematically below the sequential-execution sum for overlap-friendly
/// groups.
#[test]
fn predictions_capture_overlap_benefit() {
    let (lib, data) = profiles_for([ModelId::ResNet50, ModelId::ResNet101], 600);
    let gpu = GpuSpec::a100();
    let mlp = Mlp::train(
        &data,
        &MlpConfig {
            epochs: 100,
            ..MlpConfig::default()
        },
    );
    let specs = sample_groups(&[ModelId::ResNet50, ModelId::ResNet101], 50, &lib, 33);
    let mut below = 0;
    for s in &specs {
        use predictor::LatencyModel;
        let pred = mlp.predict_one(&s.features(&lib));
        let seq = s.sequential_ms(&lib, &gpu);
        if pred < seq {
            below += 1;
        }
    }
    assert!(below >= 40, "only {below}/50 predictions below sequential");
}
