//! End-to-end integration: offline pipeline → online serving → paper
//! claims, across every workspace crate.

use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{run_colocation, train_unified, ColocationConfig, PolicyKind, TrainerConfig};
use std::sync::Arc;

fn setup() -> (Arc<ModelLibrary>, GpuSpec, NoiseModel) {
    (
        Arc::new(ModelLibrary::new()),
        GpuSpec::a100(),
        NoiseModel::calibrated(),
    )
}

fn quick_trainer() -> TrainerConfig {
    TrainerConfig {
        samples_per_set: 500,
        runs_per_group: 3,
        mlp: predictor::MlpConfig {
            epochs: 80,
            ..predictor::MlpConfig::default()
        },
        seed: 77,
    }
}

/// The paper's core claim, end to end: train the predictor offline, serve
/// a pair online, and beat FCFS on both tail latency and QoS violations.
#[test]
fn abacus_beats_fcfs_end_to_end() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet152, ModelId::Bert];
    let (mlp, _) = train_unified(&[pair.to_vec()], &lib, &gpu, &noise, &quick_trainer());
    let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 12_000.0,
        seed: 5,
        ..ColocationConfig::default()
    };
    let fcfs = run_colocation(&pair, PolicyKind::Fcfs, None, &lib, &gpu, &noise, &cfg);
    let edf = run_colocation(&pair, PolicyKind::Edf, None, &lib, &gpu, &noise, &cfg);
    let abacus = run_colocation(
        &pair,
        PolicyKind::Abacus,
        Some(mlp),
        &lib,
        &gpu,
        &noise,
        &cfg,
    );
    assert!(
        abacus.normalized_p99() < fcfs.normalized_p99(),
        "abacus p99n {} vs fcfs {}",
        abacus.normalized_p99(),
        fcfs.normalized_p99()
    );
    assert!(
        abacus.normalized_p99() < edf.normalized_p99(),
        "abacus p99n {} vs edf {}",
        abacus.normalized_p99(),
        edf.normalized_p99()
    );
    assert!(
        abacus.violation_ratio() <= fcfs.violation_ratio(),
        "abacus viol {} vs fcfs {}",
        abacus.violation_ratio(),
        fcfs.violation_ratio()
    );
}

/// §7.3's negative result must also reproduce: on (VGG16, VGG19) the
/// saturating kernels leave no overlap room, so Abacus's throughput gain
/// over FCFS collapses (slight degradation is expected).
#[test]
fn vgg_pair_has_no_overlap_win() {
    let (lib, gpu, noise) = setup();
    let vgg = [ModelId::Vgg16, ModelId::Vgg19];
    let res = [ModelId::ResNet50, ModelId::ResNet152];
    let (mlp, _) = train_unified(
        &[vgg.to_vec(), res.to_vec()],
        &lib,
        &gpu,
        &noise,
        &quick_trainer(),
    );
    let mlp: Arc<dyn LatencyModel> = Arc::new(mlp);
    let cfg = ColocationConfig {
        qps_per_service: 50.0,
        horizon_ms: 12_000.0,
        seed: 6,
        ..ColocationConfig::default()
    };
    let gain = |models: &[ModelId]| {
        let fcfs = run_colocation(models, PolicyKind::Fcfs, None, &lib, &gpu, &noise, &cfg);
        let abacus = run_colocation(
            models,
            PolicyKind::Abacus,
            Some(mlp.clone()),
            &lib,
            &gpu,
            &noise,
            &cfg,
        );
        abacus.completed_qps() / fcfs.completed_qps()
    };
    let vgg_gain = gain(&vgg);
    let res_gain = gain(&res);
    assert!(
        res_gain > vgg_gain,
        "resnet gain {res_gain} should exceed vgg gain {vgg_gain}"
    );
    assert!(vgg_gain < 1.12, "vgg gain {vgg_gain} should be near parity");
}

/// Full accounting across the stack: every generated query is recorded
/// exactly once, whatever the policy.
#[test]
fn query_conservation_across_policies() {
    let (lib, gpu, noise) = setup();
    let models = [ModelId::ResNet101, ModelId::InceptionV3, ModelId::Bert];
    let cfg = ColocationConfig {
        qps_per_service: 30.0,
        horizon_ms: 6_000.0,
        seed: 8,
        ..ColocationConfig::default()
    };
    let mut totals = Vec::new();
    for p in [PolicyKind::Fcfs, PolicyKind::Sjf, PolicyKind::Edf] {
        let r = run_colocation(&models, p, None, &lib, &gpu, &noise, &cfg);
        totals.push(r.all.total());
        let per_service_sum: usize = r.per_service.iter().map(|s| s.total()).sum();
        assert_eq!(per_service_sum, r.all.total());
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
}

/// The whole experiment stack is deterministic given the seed.
#[test]
fn end_to_end_determinism() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::Vgg19];
    let cfg = ColocationConfig {
        qps_per_service: 20.0,
        horizon_ms: 5_000.0,
        seed: 99,
        ..ColocationConfig::default()
    };
    let a = run_colocation(&pair, PolicyKind::Sjf, None, &lib, &gpu, &noise, &cfg);
    let b = run_colocation(&pair, PolicyKind::Sjf, None, &lib, &gpu, &noise, &cfg);
    assert_eq!(a.all.total(), b.all.total());
    assert_eq!(a.all.p99_latency(), b.all.p99_latency());
    assert_eq!(a.all.violation_ratio(), b.all.violation_ratio());
}
