//! Workspace-spanning tests of the telemetry subsystem:
//!
//! * **observer effect** — running with telemetry attached yields results
//!   exactly equal to the plain runner (the instrumented loop records, it
//!   never perturbs);
//! * **event-stream shape** — exactly one arrival and one retirement per
//!   query, with registry counters agreeing with the aggregate stats;
//! * **ledger discipline** — executed rounds never overlap in wall time
//!   (§6.1 exclusivity) and, under Abacus, the predicted-vs-actual join
//!   yields a finite §5.2-style error report;
//! * **kernel spans** — each round's spans sit inside that round's
//!   execution window;
//! * **export sanity** — the Chrome trace JSON is well-formed.

use abacus_core::AbacusConfig;
use dnn_models::{ModelId, ModelLibrary};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{
    run_colocation, run_colocation_traced, train_unified, ColocationConfig, PolicyKind,
    TrainerConfig,
};
use std::sync::Arc;
use telemetry::{ChromeTrace, Counter, Hist, QueryEventKind, Telemetry};

fn setup() -> (Arc<ModelLibrary>, GpuSpec, NoiseModel) {
    (
        Arc::new(ModelLibrary::new()),
        GpuSpec::a100(),
        NoiseModel::calibrated(),
    )
}

fn trained_pair(
    pair: &[ModelId],
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
) -> Arc<dyn LatencyModel> {
    let (mlp, _) = train_unified(
        &[pair.to_vec()],
        lib,
        gpu,
        noise,
        &TrainerConfig {
            samples_per_set: 500,
            runs_per_group: 3,
            mlp: predictor::MlpConfig {
                epochs: 80,
                ..predictor::MlpConfig::default()
            },
            seed: 4,
        },
    );
    Arc::new(mlp)
}

fn cfg(seed: u64) -> ColocationConfig {
    ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 3_000.0,
        seed,
        abacus: AbacusConfig {
            predict_round_ms: Some(0.08),
            ..AbacusConfig::default()
        },
        ..ColocationConfig::default()
    }
}

/// Attaching telemetry must not perturb the simulation: every aggregate of
/// the traced run equals the plain runner's bit for bit.
#[test]
fn telemetry_does_not_perturb_results() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::InceptionV3];
    let c = cfg(21);
    let plain = run_colocation(&pair, PolicyKind::Edf, None, &lib, &gpu, &noise, &c);
    let mut tel = Telemetry::with_kernel_trace();
    let (traced, records) =
        run_colocation_traced(&pair, PolicyKind::Edf, None, &lib, &gpu, &noise, &c, &mut tel);
    assert_eq!(plain.all.total(), traced.all.total());
    assert_eq!(plain.all.completed(), traced.all.completed());
    // Exact f64 equality — any drift means the telemetry branch leaked
    // into simulation state.
    assert_eq!(plain.all.mean_latency(), traced.all.mean_latency());
    assert_eq!(plain.all.p99_latency(), traced.all.p99_latency());
    assert_eq!(plain.all.mean_queue_ms(), traced.all.mean_queue_ms());
    assert_eq!(plain.violation_ratio(), traced.violation_ratio());
    assert_eq!(records.len() as u64, tel.registry.get(Counter::QueriesArrived));
}

/// Every query arrives exactly once and retires exactly once, and the
/// registry counters agree with the aggregate outcome counts.
#[test]
fn event_stream_is_one_lifecycle_per_query() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::InceptionV3];
    let mut tel = Telemetry::new();
    let (result, records) = run_colocation_traced(
        &pair,
        PolicyKind::Fcfs,
        None,
        &lib,
        &gpu,
        &noise,
        &cfg(22),
        &mut tel,
    );
    let n = records.len();
    assert!(n > 50, "run too small to be meaningful: {n} queries");
    let mut arrived = vec![0u32; n];
    let mut retired = vec![0u32; n];
    for e in tel.events() {
        match e.kind {
            QueryEventKind::Arrived { .. } => arrived[e.query as usize] += 1,
            QueryEventKind::Retired { .. } => retired[e.query as usize] += 1,
            QueryEventKind::Dispatched { .. } => {}
        }
    }
    assert!(arrived.iter().all(|&c| c == 1), "duplicate/missing arrivals");
    assert!(retired.iter().all(|&c| c == 1), "duplicate/missing retires");
    let reg = &tel.registry;
    assert_eq!(reg.get(Counter::QueriesArrived), n as u64);
    assert_eq!(reg.get(Counter::QueriesCompleted), result.all.completed() as u64);
    assert_eq!(
        reg.get(Counter::QueriesCompleted)
            + reg.get(Counter::QueriesDropped)
            + reg.get(Counter::QueriesTimedOut),
        n as u64
    );
    assert_eq!(
        reg.hist(Hist::QueueDelayMs).count(),
        reg.get(Counter::QueriesCompleted)
    );
}

/// Under Abacus: executed rounds never overlap (one group at a time on the
/// GPU — §6.1 exclusivity), the ledger join produces a finite error report,
/// kernel spans live inside their round's execution window, and the trace
/// exports to well-formed JSON.
#[test]
fn abacus_ledger_kernel_spans_and_export() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::InceptionV3];
    let mlp = trained_pair(&pair, &lib, &gpu, &noise);
    let mut tel = Telemetry::with_kernel_trace();
    let (_, records) = run_colocation_traced(
        &pair,
        PolicyKind::Abacus,
        Some(mlp),
        &lib,
        &gpu,
        &noise,
        &cfg(23),
        &mut tel,
    );
    assert!(!records.is_empty());

    // Executed rounds are disjoint in wall time, in round order.
    let executed: Vec<_> = tel
        .ledger
        .rows()
        .iter()
        .filter(|r| r.exec_start_ms.is_finite())
        .collect();
    assert!(executed.len() > 10, "too few executed rounds: {}", executed.len());
    for w in executed.windows(2) {
        let end = w[0].exec_start_ms + w[0].actual_ms;
        assert!(
            w[1].exec_start_ms >= end - 1e-6,
            "rounds {} and {} overlap: {} < {}",
            w[0].round,
            w[1].round,
            w[1].exec_start_ms,
            end
        );
    }

    // The §5.2 join: planned rounds carry positive predictions and the
    // pooled error is finite and sane for a trained MLP.
    let report = tel.ledger.error_report().expect("no usable predictions");
    assert!(report.rounds > 10);
    assert!(report.mean.is_finite() && report.std.is_finite());
    assert!(
        report.mean_abs < 0.5,
        "trained predictor off by {:.0}% on average",
        report.mean_abs * 100.0
    );
    // Every batched scoring call is one predictor-batch observation.
    assert_eq!(
        tel.registry.hist(Hist::PredictorBatch).count(),
        tel.registry.get(Counter::PredictionRounds)
    );

    // Kernel spans sit inside their round's execution window.
    assert!(!tel.kernel_spans().is_empty());
    for k in tel.kernel_spans() {
        let row = tel.ledger.by_round(k.round).expect("span without round");
        assert!(
            k.start_ms >= row.exec_start_ms - 1e-6
                && k.end_ms <= row.exec_start_ms + row.actual_ms + 1e-6,
            "kernel span [{}, {}] outside round {} window [{}, {}]",
            k.start_ms,
            k.end_ms,
            k.round,
            row.exec_start_ms,
            row.exec_start_ms + row.actual_ms
        );
        assert!(k.occupancy > 0.0 && k.occupancy <= 1.0);
    }

    // Export sanity: object form, one JSON object per event, braces balance.
    let mut trace = ChromeTrace::new();
    trace.add_telemetry(&tel, &["Res50", "IncepV3"]);
    let json = trace.to_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.ends_with("]}\n"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(trace.len() > tel.events().len(), "lifecycle events missing");
}
