//! Property-based tests (proptest) of the core invariants, spanning the
//! simulator, the cost model, the feature encoding and the search.

use dnn_models::{ModelId, ModelLibrary, QueryInput, BATCH_CHOICES, SEQ_CHOICES};
use gpu_sim::{run_group, GpuSpec, KernelDesc, NoiseModel};
use predictor::{
    sample_group, Dataset, LatencyModel, LinearRegression, LinearSvr, Mlp, MlpConfig, SvrConfig,
    FEATURE_DIM,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;
use workload::SeededRng;

fn library() -> &'static Arc<ModelLibrary> {
    static LIB: OnceLock<Arc<ModelLibrary>> = OnceLock::new();
    LIB.get_or_init(|| Arc::new(ModelLibrary::new()))
}

/// One quickly-trained model of each predictor family, over
/// `FEATURE_DIM`-shaped synthetic data (for the batch-consistency
/// property).
fn predictors() -> &'static Vec<Box<dyn LatencyModel>> {
    static MODELS: OnceLock<Vec<Box<dyn LatencyModel>>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut rng = SeededRng::new(42);
        let mut d = Dataset::new();
        for _ in 0..200 {
            let x: Vec<f64> = (0..FEATURE_DIM).map(|_| rng.f64()).collect();
            let y = 2.0 + x.iter().sum::<f64>();
            d.push(x, y);
        }
        vec![
            Box::new(Mlp::train(&d, &MlpConfig { epochs: 5, ..MlpConfig::default() })),
            Box::new(LinearRegression::fit(&d, 1e-6)),
            Box::new(LinearSvr::fit(&d, &SvrConfig { epochs: 10, ..SvrConfig::default() })),
        ]
    })
}

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (1e6f64..1e11, 1e4f64..1e9, 1.0f64..5000.0)
        .prop_map(|(flops, bytes, blocks)| KernelDesc::new(flops, bytes, blocks))
}

fn arb_stream() -> impl Strategy<Value = Vec<KernelDesc>> {
    proptest::collection::vec(arb_kernel(), 1..12)
}

fn arb_model() -> impl Strategy<Value = ModelId> {
    (0usize..ModelId::ALL.len()).prop_map(ModelId::from_index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Group latency is bounded below by the slowest member's solo time and
    /// above by sequential execution (plus the interference margin).
    #[test]
    fn group_latency_bounds(streams in proptest::collection::vec(arb_stream(), 1..4)) {
        let gpu = GpuSpec::a100();
        let result = run_group(&gpu, &NoiseModel::disabled(), 0, &streams);
        let solos: Vec<f64> = streams
            .iter()
            .map(|s| gpu_sim::kernel::sequence_solo_ms(s, &gpu))
            .collect();
        let max_solo = solos.iter().cloned().fold(0.0, f64::max);
        let seq: f64 = solos.iter().sum();
        prop_assert!(result.total_ms >= max_solo - 1e-9, "{} < {max_solo}", result.total_ms);
        prop_assert!(result.total_ms <= seq * 1.20 + 1e-9, "{} > {seq}", result.total_ms);
    }

    /// Adding a co-running stream never makes an existing stream finish
    /// earlier (contention monotonicity at the system level).
    #[test]
    fn corunner_never_speeds_up(a in arb_stream(), b in arb_stream()) {
        let gpu = GpuSpec::a100();
        let alone = run_group(&gpu, &NoiseModel::disabled(), 0, std::slice::from_ref(&a));
        let together = run_group(&gpu, &NoiseModel::disabled(), 0, &[a, b]);
        prop_assert!(together.completions[0].end_ms >= alone.completions[0].end_ms - 1e-9);
    }

    /// The engine is deterministic: same seed, same result, even with noise.
    #[test]
    fn engine_determinism(streams in proptest::collection::vec(arb_stream(), 1..3), seed in 0u64..1000) {
        let gpu = GpuSpec::a100();
        let x = run_group(&gpu, &NoiseModel::calibrated(), seed, &streams);
        let y = run_group(&gpu, &NoiseModel::calibrated(), seed, &streams);
        prop_assert_eq!(x, y);
    }

    /// Kernel roofline sanity on arbitrary kernels: occupancy, shares and
    /// solo time stay in their domains on both the full GPU and MIG slices.
    #[test]
    fn kernel_cost_domains(k in arb_kernel()) {
        for gpu in [GpuSpec::a100(), GpuSpec::v100(), GpuSpec::a100().mig_slice(gpu_sim::MigProfile::OneG5Gb)] {
            prop_assert!((0.0..=1.0).contains(&k.occupancy(&gpu)));
            prop_assert!(k.efficiency(&gpu) >= k.occupancy(&gpu) - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&k.compute_share(&gpu)));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&k.memory_share(&gpu)));
            prop_assert!(k.solo_ms(&gpu) >= k.launch_ms);
        }
    }

    /// Instance-based sampling always produces schedulable groups: valid
    /// ranges, at least one completing query, Fig. 8 features in [0, 1].
    #[test]
    fn sampled_groups_are_valid(seed in 0u64..500) {
        let lib = library();
        let mut rng = SeededRng::new(seed);
        let models = [ModelId::ResNet101, ModelId::Vgg16, ModelId::Bert];
        let g = sample_group(&models, lib, &mut rng);
        let mut any_complete = false;
        for e in &g.entries {
            let n = lib.graph(e.model, e.input).len();
            prop_assert!(e.op_start < e.op_end && e.op_end <= n);
            any_complete |= e.op_end == n;
        }
        prop_assert!(any_complete);
        let x = g.features(lib);
        prop_assert_eq!(x.len(), FEATURE_DIM);
        prop_assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Model instantiation is monotone in batch size: more batch, more
    /// FLOPs and never a faster solo run.
    #[test]
    fn batch_monotonicity(model in arb_model()) {
        let gpu = GpuSpec::a100();
        let lib = library();
        let seqs = model.seq_choices();
        let seq = seqs[seqs.len() - 1];
        let mut last_flops = 0.0;
        let mut last_solo = 0.0;
        for &b in &BATCH_CHOICES {
            let g = lib.graph(model, QueryInput::new(b, seq));
            let flops = g.total_flops();
            let solo = g.solo_ms(&gpu);
            prop_assert!(flops > last_flops);
            prop_assert!(solo >= last_solo);
            last_flops = flops;
            last_solo = solo;
        }
    }

    /// BERT cost is monotone in sequence length too (§3.3's input
    /// sensitivity).
    #[test]
    fn bert_seq_monotonicity(b in 0usize..BATCH_CHOICES.len()) {
        let lib = library();
        let batch = BATCH_CHOICES[b];
        let mut last = 0.0;
        for &s in &SEQ_CHOICES {
            let f = lib.graph(ModelId::Bert, QueryInput::new(batch, s)).total_flops();
            prop_assert!(f > last);
            last = f;
        }
    }

    /// The multi-way search's output always satisfies its contract: head
    /// query fully included, prediction within budget, ranges valid.
    #[test]
    fn search_respects_budget(budget in 5.0f64..120.0, ways in 1usize..8) {
        let lib = library();
        struct Span;
        impl LatencyModel for Span {
            fn predict_one(&self, x: &[f64]) -> f64 {
                let mut t = 0.0;
                for slot in 0..predictor::MAX_COLOCATED {
                    let base = predictor::MODEL_SLOT_BASE + slot * 4;
                    t += (x[base + 1] - x[base]) * 30.0;
                }
                t
            }
            fn name(&self) -> &'static str { "span" }
        }
        let models = [ModelId::ResNet152, ModelId::InceptionV3, ModelId::Bert];
        let queries: Vec<abacus_core::Query> = models
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let input = m.max_input();
                abacus_core::Query::new(i as u64, m, input, 0.0, 200.0, lib.graph(m, input).len())
            })
            .collect();
        let refs: Vec<&abacus_core::Query> = queries.iter().collect();
        match abacus_core::plan_group(&refs, budget, &Span, lib, ways) {
            abacus_core::SearchResult::Planned(p) => {
                prop_assert!(p.predicted_ms <= budget + 1e-9);
                prop_assert_eq!(p.entries[0].query_id, 0);
                prop_assert_eq!(p.entries[0].op_end, queries[0].n_ops);
                for e in &p.entries {
                    prop_assert!(e.op_start < e.op_end);
                }
            }
            abacus_core::SearchResult::Infeasible { .. } => {
                // Head alone must genuinely exceed the budget.
                prop_assert!(budget < 30.0 + 1.0);
            }
        }
    }

    /// Batched prediction (`predict_batch`, `predict_into`) is
    /// interchangeable with per-sample `predict_one` on real Fig. 8
    /// feature rows, for all three predictor families — the contract the
    /// multi-way search's buffered hot path relies on.
    #[test]
    fn batched_prediction_matches_scalar(seed in 0u64..300, n in 1usize..33) {
        let lib = library();
        let mut rng = SeededRng::new(seed);
        let models = [ModelId::ResNet152, ModelId::Vgg16, ModelId::Bert];
        let batch: Vec<Vec<f64>> = (0..n)
            .map(|_| sample_group(&models, lib, &mut rng).features(lib))
            .collect();
        let flat: Vec<f64> = batch.iter().flatten().copied().collect();
        for model in predictors() {
            let one: Vec<f64> = batch.iter().map(|r| model.predict_one(r)).collect();
            let via_batch = model.predict_batch(&batch);
            let mut via_into = Vec::new();
            model.predict_into(&flat, n, &mut via_into);
            prop_assert_eq!(via_batch.len(), n);
            prop_assert_eq!(via_into.len(), n);
            for i in 0..n {
                prop_assert!((one[i] - via_batch[i]).abs() <= 1e-9, "{} batch row {i}", model.name());
                prop_assert!((one[i] - via_into[i]).abs() <= 1e-9, "{} into row {i}", model.name());
            }
        }
    }

    /// Percentile estimation is order-safe and bounded by the sample range.
    #[test]
    fn percentile_bounds(mut xs in proptest::collection::vec(0.0f64..1e4, 1..200), p in 0.0f64..100.0) {
        let v = abacus_metrics::percentile(&xs, p);
        xs.sort_by(|a, b| a.total_cmp(b));
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }
}
