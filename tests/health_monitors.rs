//! End-to-end tests of the streaming run-health layer: the monitors ride a
//! real serving run (same pair, load, and seeds as the CLI `health` study)
//! and must (a) not perturb the simulation at all, (b) reproduce the
//! solo-round out-of-distribution finding online, (c) flag injected fault
//! plans with bounded detection latency on the simulation clock, and
//! (d) produce bit-identical alert streams across runs.

use abacus_core::AbacusConfig;
use dnn_models::{ModelId, ModelLibrary};
use faults::{ArrivalBurst, FaultPlan, PredictorFault};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use serving::{
    run_colocation_certified, run_colocation_observed, train_unified, ColocationConfig,
    NodeOptions, PolicyKind, TrainerConfig,
};
use std::sync::{Arc, OnceLock};
use telemetry::{
    HealthAlert, HealthAlertKind, HealthConfig, SloConfig, Telemetry, WIDTH_CLASSES,
};
use workload::fork_seed;

/// Same pair as the CLI `health` study.
const PAIR: [ModelId; 2] = [ModelId::ResNet50, ModelId::ResNet152];

/// Burst-fault onset on the simulation clock, ms (mirrors
/// `FaultPlan::at_intensity`).
const BURST_ONSET_MS: f64 = 2_000.0;

fn library() -> &'static Arc<ModelLibrary> {
    static LIB: OnceLock<Arc<ModelLibrary>> = OnceLock::new();
    LIB.get_or_init(|| Arc::new(ModelLibrary::new()))
}

/// One MLP for the whole file, trained deterministically on the test pair.
fn mlp() -> Arc<dyn LatencyModel> {
    static MLP: OnceLock<Arc<dyn LatencyModel>> = OnceLock::new();
    MLP.get_or_init(|| {
        let (m, _) = train_unified(
            &[PAIR.to_vec()],
            library(),
            &GpuSpec::a100(),
            &NoiseModel::calibrated(),
            &TrainerConfig {
                samples_per_set: 300,
                runs_per_group: 3,
                ..TrainerConfig::fast()
            },
        );
        Arc::new(m)
    })
    .clone()
}

/// The CLI study's cell configuration: 30 QPS aggregate (a healthy
/// operating point inside the SLO budget), 6 s horizon covering the burst
/// window plus recovery, pinned prediction-round charge.
fn cfg() -> ColocationConfig {
    ColocationConfig {
        qps_per_service: 15.0,
        horizon_ms: 6_000.0,
        seed: fork_seed(2021, 0x8E00),
        small_inputs: false,
        abacus: AbacusConfig {
            predict_round_ms: Some(0.08),
            ..AbacusConfig::default()
        },
    }
}

/// The study's monitor tuning (see `health_cmd`): 30-sample windows so the
/// warm-up violation cluster of a healthy run cannot alarm.
fn health_config() -> HealthConfig {
    HealthConfig {
        slo: SloConfig {
            min_samples: 30,
            exhaust_min_samples: 80,
            ..SloConfig::default()
        },
        ..HealthConfig::default()
    }
}

fn plan_seed() -> u64 {
    fork_seed(2021, 0x8E17)
}

/// Run one observed Abacus cell and return its telemetry.
fn observe(plan: &FaultPlan) -> Telemetry {
    let mut tel = Telemetry::default();
    tel.enable_health(health_config());
    let out = run_colocation_observed(
        &PAIR,
        PolicyKind::Abacus,
        Some(mlp()),
        None,
        library(),
        &GpuSpec::a100(),
        &NoiseModel::calibrated(),
        &cfg(),
        plan,
        NodeOptions::default(),
        Some(&mut tel),
    );
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "serving invariants violated under observation"
    );
    tel
}

fn bias_plan(intensity: f64) -> FaultPlan {
    FaultPlan {
        seed: plan_seed(),
        kernel: None,
        predictor: Some(PredictorFault::Bias {
            factor: 1.0 - 0.5 * intensity,
        }),
        burst: None,
        degraded: Vec::new(),
    }
}

fn burst_plan(intensity: f64) -> FaultPlan {
    FaultPlan {
        seed: plan_seed(),
        kernel: None,
        predictor: None,
        burst: Some(ArrivalBurst {
            start_ms: BURST_ONSET_MS,
            end_ms: 4_000.0,
            extra_qps: 60.0 * intensity,
        }),
        degraded: Vec::new(),
    }
}

/// Enabling the health monitors must not perturb the simulation: the
/// observed run's per-query records are identical — bit for bit — to the
/// unobserved run's.
#[test]
fn monitors_do_not_perturb_the_simulation() {
    let plan = FaultPlan::none();
    let unobserved = run_colocation_certified(
        &PAIR,
        PolicyKind::Abacus,
        Some(mlp()),
        None,
        library(),
        &GpuSpec::a100(),
        &NoiseModel::calibrated(),
        &cfg(),
        &plan,
        NodeOptions::default(),
    );
    let mut tel = Telemetry::default();
    tel.enable_health(health_config());
    let observed = run_colocation_observed(
        &PAIR,
        PolicyKind::Abacus,
        Some(mlp()),
        None,
        library(),
        &GpuSpec::a100(),
        &NoiseModel::calibrated(),
        &cfg(),
        &plan,
        NodeOptions::default(),
        Some(&mut tel),
    );
    assert_eq!(unobserved.records, observed.records);
    assert_eq!(unobserved.degraded, observed.degraded);
}

/// A healthy run reproduces PR 5's solo-round out-of-distribution finding
/// *online* — the solo width class shows an error level far above the
/// multi-way classes and (alone) alarms — while every SLO monitor stays
/// quiet: no burn-rate alert, no budget exhaustion.
#[test]
fn healthy_run_flags_solo_ood_and_keeps_slo_quiet() {
    let tel = observe(&FaultPlan::none());
    let h = tel.health().expect("health enabled");

    // Online OOD: solo EWMA |err| is several times the 2-way level.
    let solo = h.drift().class(0);
    let multi = h.drift().class(1);
    assert!(solo.samples > 20, "expected solo rounds, got {}", solo.samples);
    assert!(multi.samples > 12, "expected 2-way rounds, got {}", multi.samples);
    assert!(
        solo.ewma_abs > 3.0 * multi.ewma_abs,
        "solo |err| {} not an OOD outlier vs 2-way {}",
        solo.ewma_abs,
        multi.ewma_abs
    );
    assert!(solo.alarmed_at_ms.is_some(), "solo OOD regime must alarm");

    // No multi-way drift, no SLO alerts of any kind.
    for class in 1..WIDTH_CLASSES {
        assert_eq!(h.drift().class(class).alarmed_at_ms, None, "class {class}");
    }
    assert!(
        h.alerts()
            .iter()
            .all(|a| matches!(a.kind, HealthAlertKind::Drift { class: 0, .. })),
        "healthy baseline raised SLO alerts: {:?}",
        h.alerts()
    );
}

/// A whole-run predictor bias (onset t = 0) alarms the multi-way drift
/// detectors with bounded detection latency: well before the horizon, on
/// the simulation clock.
#[test]
fn predictor_bias_drifts_multiway_with_bounded_latency() {
    let tel = observe(&bias_plan(1.0));
    let h = tel.health().expect("health enabled");
    let alarm_ms = (1..WIDTH_CLASSES)
        .filter_map(|c| h.drift().class(c).alarmed_at_ms)
        .min_by(f64::total_cmp)
        .expect("50% under-prediction must alarm a multi-way drift class");
    assert!(
        alarm_ms > 0.0 && alarm_ms < 4_000.0,
        "detection latency out of bounds: {alarm_ms} ms"
    );
    // The drift alert is in the stream and tripped the flight recorder.
    assert!(h
        .alerts()
        .iter()
        .any(|a| matches!(a.kind, HealthAlertKind::Drift { class, .. } if class >= 1)));
    assert!(h.flight().dump().is_some(), "drift must trip the recorder");
}

/// A mid-run arrival burst (onset 2 000 ms) raises its first SLO alert
/// *after* the onset and within bounded latency — never before (the
/// pre-onset stream is the healthy baseline, which is quiet).
#[test]
fn arrival_burst_burns_budget_after_onset_only() {
    let tel = observe(&burst_plan(1.0));
    let h = tel.health().expect("health enabled");
    let slo_alerts: Vec<&HealthAlert> = h
        .alerts()
        .iter()
        .filter(|a| {
            matches!(
                a.kind,
                HealthAlertKind::BurnRate { .. } | HealthAlertKind::BudgetExhausted { .. }
            )
        })
        .collect();
    assert!(!slo_alerts.is_empty(), "burst must raise an SLO alert");
    let first = slo_alerts[0].at_ms;
    assert!(
        first >= BURST_ONSET_MS,
        "SLO alert fired {first} ms, before the {BURST_ONSET_MS} ms onset"
    );
    assert!(
        first <= 4_500.0,
        "detection latency out of bounds: {} ms after onset",
        first - BURST_ONSET_MS
    );
}

/// Alert streams are deterministic: two identical observed runs produce
/// equal alert streams (`PartialEq` — same kinds, same sequence, same
/// simulation-clock timestamps to the bit).
#[test]
fn alert_streams_reproduce_bit_for_bit() {
    let a = observe(&bias_plan(1.0));
    let b = observe(&bias_plan(1.0));
    let (ha, hb) = (a.health().unwrap(), b.health().unwrap());
    assert!(!ha.alerts().is_empty(), "bias cell must alert");
    assert_eq!(ha.alerts(), hb.alerts());
    for (x, y) in ha.alerts().iter().zip(hb.alerts()) {
        assert_eq!(x.at_ms.to_bits(), y.at_ms.to_bits());
    }
    assert_eq!(ha.flight().dump(), hb.flight().dump());
    assert_eq!(
        ha.queue_sketch().quantile(99.0).to_bits(),
        hb.queue_sketch().quantile(99.0).to_bits()
    );
}
