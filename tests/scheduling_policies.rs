//! Integration tests of the scheduling layer: QoS semantics across
//! policies, the drop mechanism, headroom discipline, and the MIG study's
//! building blocks.

use abacus_core::{AbacusConfig, AbacusScheduler, Query, Scheduler};
use dnn_models::{ModelId, ModelLibrary, QueryInput};
use faults::{FaultPlan, PredictorFault};
use gpu_sim::{GpuSpec, MigProfile, NoiseModel};
use predictor::LatencyModel;
use serving::{
    run_colocation, run_colocation_certified, run_colocation_faulty, run_with_services,
    train_certified, train_unified, ColocationConfig, NodeOptions, PolicyKind, ServiceSpec,
    TrainerConfig,
};
use std::sync::Arc;

fn setup() -> (Arc<ModelLibrary>, GpuSpec, NoiseModel) {
    (
        Arc::new(ModelLibrary::new()),
        GpuSpec::a100(),
        NoiseModel::calibrated(),
    )
}

fn trained_pair(
    pair: &[ModelId],
    lib: &Arc<ModelLibrary>,
    gpu: &GpuSpec,
    noise: &NoiseModel,
) -> Arc<dyn LatencyModel> {
    let (mlp, _) = train_unified(
        &[pair.to_vec()],
        lib,
        gpu,
        noise,
        &TrainerConfig {
            samples_per_set: 500,
            runs_per_group: 3,
            mlp: predictor::MlpConfig {
                epochs: 80,
                ..predictor::MlpConfig::default()
            },
            seed: 4,
        },
    );
    Arc::new(mlp)
}

/// Under light load every policy meets QoS — the policies only diverge
/// once the queue carries real pressure.
#[test]
fn light_load_meets_qos_for_all_policies() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::InceptionV3];
    let mlp = trained_pair(&pair, &lib, &gpu, &noise);
    let cfg = ColocationConfig {
        qps_per_service: 4.0,
        horizon_ms: 8_000.0,
        seed: 11,
        ..ColocationConfig::default()
    };
    for p in PolicyKind::ALL {
        let pred = (p == PolicyKind::Abacus).then(|| mlp.clone());
        let r = run_colocation(&pair, p, pred, &lib, &gpu, &noise, &cfg);
        assert!(
            r.violation_ratio() < 0.02,
            "{}: viol {}",
            p.name(),
            r.violation_ratio()
        );
    }
}

/// Abacus's completed queries respect their *own* per-service QoS targets
/// almost always — the predictor-certified groups are the mechanism.
#[test]
fn abacus_completed_queries_meet_per_service_qos() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet152, ModelId::InceptionV3];
    let mlp = trained_pair(&pair, &lib, &gpu, &noise);
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 10_000.0,
        seed: 12,
        ..ColocationConfig::default()
    };
    let r = run_colocation(
        &pair,
        PolicyKind::Abacus,
        Some(mlp),
        &lib,
        &gpu,
        &noise,
        &cfg,
    );
    for (i, s) in r.per_service.iter().enumerate() {
        if s.completed() == 0 {
            continue;
        }
        let p95 = s.latency_percentile(95.0);
        assert!(
            p95 <= r.qos_ms[i] * 1.15,
            "service {i}: p95 {p95} vs qos {}",
            r.qos_ms[i]
        );
    }
}

/// The controller refuses to start queries it cannot finish (the §6.2
/// drop mechanism) instead of poisoning the queue.
#[test]
fn drop_mechanism_sheds_infeasible_queries() {
    let (lib, gpu, _) = setup();
    let mlp = trained_pair(&[ModelId::Vgg19], &lib, &gpu, &NoiseModel::calibrated());
    let mut sched = AbacusScheduler::new(mlp, lib.clone(), AbacusConfig::default());
    let input = QueryInput::new(32, 1);
    let n = lib.graph(ModelId::Vgg19, input).len();
    // 3 ms of headroom for a ~27 ms query: must be dropped, not scheduled.
    let q = Query::new(1, ModelId::Vgg19, input, 0.0, 30.0, n);
    let d = sched.decide(27.0, &[q]);
    assert_eq!(d.dropped, vec![1]);
    assert!(d.group.is_none());
}

/// MIG full isolation breaks QoS for the heavy models while Abacus on the
/// un-partitioned slice keeps violations strictly lower (Fig. 20's story).
#[test]
fn mig_isolation_story() {
    let (lib, gpu, noise) = setup();
    let small = gpu.mig_slice(MigProfile::OneG5Gb);
    let qos = lib.qos_target_ms(ModelId::ResNet152, &gpu);
    let services = vec![ServiceSpec {
        model: ModelId::ResNet152,
        qos_ms: qos,
    }];
    let cfg = ColocationConfig {
        qps_per_service: 8.0,
        horizon_ms: 8_000.0,
        seed: 13,
        ..ColocationConfig::default()
    };
    let isolated = run_with_services(
        &services,
        PolicyKind::Fcfs,
        None,
        &lib,
        &small,
        &noise,
        &cfg,
    );
    // The 1/7 slice cannot run ResNet-152's large inputs inside a QoS
    // target calibrated for the full GPU.
    assert!(
        isolated.violation_ratio() > 0.2,
        "isolated viol {}",
        isolated.violation_ratio()
    );
    let full = run_colocation(
        &[ModelId::ResNet152],
        PolicyKind::Fcfs,
        None,
        &lib,
        &gpu,
        &noise,
        &cfg,
    );
    assert!(full.violation_ratio() < isolated.violation_ratio());
}

/// Metamorphic: raising the fault intensity never makes serving *better*.
/// [`FaultPlan::at_intensity`] makes every injection strictly harsher with
/// intensity, so the QoS-violation ratio must be non-decreasing along the
/// dose axis (small slack for arrival-pattern resampling at the burst).
#[test]
fn qos_violations_monotone_in_fault_intensity() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::ResNet152];
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 5_000.0,
        seed: 11,
        ..ColocationConfig::default()
    };
    let mut last = -1.0;
    for intensity in [0.0, 0.5, 1.0] {
        let plan = FaultPlan::at_intensity(41, intensity);
        let out = run_colocation_faulty(
            &pair,
            PolicyKind::Fcfs,
            None,
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            NodeOptions::default(),
        );
        assert!(out.invariant_violations.is_empty());
        let v = out.result.violation_ratio();
        assert!(
            v >= last - 0.02,
            "intensity {intensity}: violation ratio {v} dropped below {last}"
        );
        last = v;
    }
    // The dose must actually bite: full intensity is strictly worse than
    // fault-free, not merely non-decreasing within the slack.
    assert!(last > 0.1, "full-intensity run suspiciously healthy: {last}");
}

/// Metamorphic: under *total* predictor failure (frozen output), Abacus
/// with the defensive runtime degrades to FCFS dispatch instead of
/// trusting garbage — so it never ends up meaningfully worse than having
/// run plain FCFS from the start.
#[test]
fn degraded_abacus_never_worse_than_fcfs_under_total_predictor_failure() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::InceptionV3];
    let mlp = trained_pair(&pair, &lib, &gpu, &noise);
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 6_000.0,
        seed: 15,
        abacus: AbacusConfig {
            predict_round_ms: Some(0.08),
            adaptive_margin: true,
            fcfs_fallback_error: Some(0.5),
            ..AbacusConfig::default()
        },
        ..ColocationConfig::default()
    };
    // The predictor answers a constant regardless of input — certifying
    // every group as trivially cheap (the dangerous direction).
    let plan = FaultPlan {
        seed: 5,
        predictor: Some(PredictorFault::Freeze { value_ms: 0.01 }),
        ..FaultPlan::none()
    };
    let defended = run_colocation_faulty(
        &pair,
        PolicyKind::Abacus,
        Some(mlp),
        &lib,
        &gpu,
        &noise,
        &cfg,
        &plan,
        NodeOptions {
            timeout_factor: Some(3.0),
        },
    );
    assert!(defended.invariant_violations.is_empty());
    assert!(
        defended.degraded,
        "total predictor failure must trip the FCFS fallback"
    );
    let fcfs = run_colocation_faulty(
        &pair,
        PolicyKind::Fcfs,
        None,
        &lib,
        &gpu,
        &noise,
        &cfg,
        &plan,
        NodeOptions::default(),
    );
    let (dv, fv) = (
        defended.result.violation_ratio(),
        fcfs.result.violation_ratio(),
    );
    assert!(
        dv <= fv + 0.05,
        "degraded Abacus ({dv}) worse than plain FCFS ({fv})"
    );
}

/// Byte-identity regression: with conformal certification *disabled*, a
/// run that carries a fully trained certifier produces the exact same
/// per-query record stream — and the exact same serialized CSV bytes — as
/// the pre-certification entry point, both fault-free and under a PR 4
/// fault plan. The `conformal` flag is the only thing allowed to change
/// behaviour; merely attaching the artifact must be inert end-to-end.
#[test]
fn conformal_disabled_is_byte_identical_end_to_end() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::ResNet152];
    let trained = train_certified(
        &[pair.to_vec()],
        &lib,
        &gpu,
        &noise,
        &TrainerConfig {
            samples_per_set: 400,
            runs_per_group: 3,
            seed: 4,
            ..TrainerConfig::fast()
        },
        0.05,
    );
    let mean: Arc<dyn LatencyModel> = Arc::new(trained.mean);
    let certifier: Arc<dyn LatencyModel> = Arc::new(trained.certifier);
    let cfg = ColocationConfig {
        qps_per_service: 25.0,
        horizon_ms: 5_000.0,
        seed: 17,
        abacus: AbacusConfig {
            // Wall-clock startup calibration makes unpinned runs
            // non-repeatable across invocations; byte-identity needs a
            // pinned decision overhead.
            predict_round_ms: Some(0.08),
            ..AbacusConfig::default()
        },
        ..ColocationConfig::default()
    };
    let csv = |records: &[abacus_metrics::QueryRecord]| -> String {
        let mut s = String::from("service,arrival_ms,latency_ms,qos_ms,outcome,requests,queue_ms\n");
        for r in records {
            s.push_str(&format!(
                "{},{},{},{},{:?},{},{}\n",
                r.service, r.arrival_ms, r.latency_ms, r.qos_ms, r.outcome, r.requests, r.queue_ms
            ));
        }
        s
    };
    for plan in [FaultPlan::none(), FaultPlan::at_intensity(41, 0.5)] {
        let plain = run_colocation_faulty(
            &pair,
            PolicyKind::Abacus,
            Some(mean.clone()),
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            NodeOptions::default(),
        );
        let carried = run_colocation_certified(
            &pair,
            PolicyKind::Abacus,
            Some(mean.clone()),
            Some(certifier.clone()),
            &lib,
            &gpu,
            &noise,
            &cfg,
            &plan,
            NodeOptions::default(),
        );
        assert_eq!(plain.records, carried.records, "plan seed {}", plan.seed);
        assert_eq!(csv(&plain.records), csv(&carried.records));
        assert_eq!(plain.degraded, carried.degraded);
        assert_eq!(
            plain.invariant_violations, carried.invariant_violations,
            "certifier-carrying run tripped different invariants"
        );
    }
}

/// SJF pays prediction latency on the critical path; with a deep queue its
/// scheduling overhead is visible against FCFS on identical work.
#[test]
fn sjf_overhead_visible_under_pressure() {
    let (lib, gpu, noise) = setup();
    let pair = [ModelId::ResNet50, ModelId::Bert];
    let cfg = ColocationConfig {
        qps_per_service: 60.0,
        horizon_ms: 6_000.0,
        seed: 14,
        ..ColocationConfig::default()
    };
    let fcfs = run_colocation(&pair, PolicyKind::Fcfs, None, &lib, &gpu, &noise, &cfg);
    let sjf = run_colocation(&pair, PolicyKind::Sjf, None, &lib, &gpu, &noise, &cfg);
    // Same offered work.
    assert_eq!(fcfs.all.total(), sjf.all.total());
    // SJF's mean latency for completed small jobs is lower (that is its
    // point), but it cannot complete more than the queue allows.
    assert!(sjf.all.mean_latency() <= fcfs.all.mean_latency() * 1.05);
}
