//! Property-based and golden tests of the fault-injection subsystem.
//!
//! Three layers of assurance, per the fault-model design note in
//! DESIGN.md:
//!
//! * **properties** — random [`FaultPlan`]s may degrade QoS arbitrarily,
//!   but the serving-loop invariants always hold and every issued query is
//!   retired exactly once (completed + dropped + timed-out = issued);
//! * **golden no-fault** — `FaultPlan::none()` through the fault-aware
//!   runner is bit-identical to the plain runner, pinned by a trace
//!   checksum so an accidental behaviour change of the no-fault path
//!   cannot slip through;
//! * **determinism** — the same plan and seed reproduce the identical
//!   trace, bit for bit.

use abacus_core::AbacusConfig;
use abacus_metrics::{QueryOutcome, QueryRecord};
use dnn_models::{ModelId, ModelLibrary};
use faults::{
    sanitize_prediction, ArrivalBurst, FaultPlan, FaultyModel, KernelSpikes, PredictorFault,
};
use gpu_sim::{GpuSpec, NoiseModel};
use predictor::LatencyModel;
use proptest::prelude::*;
use serving::{
    run_colocation, run_colocation_faulty, train_unified, ColocationConfig, FaultRunOutcome,
    NodeOptions, PolicyKind, TrainerConfig,
};
use std::sync::{Arc, OnceLock};

const PAIR: [ModelId; 2] = [ModelId::ResNet50, ModelId::InceptionV3];

fn library() -> &'static Arc<ModelLibrary> {
    static LIB: OnceLock<Arc<ModelLibrary>> = OnceLock::new();
    LIB.get_or_init(|| Arc::new(ModelLibrary::new()))
}

/// One MLP for the whole file, trained deterministically on the test pair.
fn mlp() -> Arc<dyn LatencyModel> {
    static MLP: OnceLock<Arc<dyn LatencyModel>> = OnceLock::new();
    MLP.get_or_init(|| {
        let (m, _) = train_unified(
            &[PAIR.to_vec()],
            library(),
            &GpuSpec::a100(),
            &NoiseModel::calibrated(),
            &TrainerConfig {
                samples_per_set: 300,
                runs_per_group: 3,
                ..TrainerConfig::fast()
            },
        );
        Arc::new(m)
    })
    .clone()
}

/// A short, pressured run: long enough for groups to complete and faults
/// to bite, short enough for dozens of proptest cases.
fn cfg(defended: bool) -> ColocationConfig {
    ColocationConfig {
        qps_per_service: 30.0,
        horizon_ms: 1_500.0,
        seed: 7,
        small_inputs: false,
        abacus: AbacusConfig {
            predict_round_ms: Some(0.08),
            adaptive_margin: defended,
            fcfs_fallback_error: defended.then_some(0.5),
            ..AbacusConfig::default()
        },
    }
}

fn run_faulty(policy: PolicyKind, defended: bool, plan: &FaultPlan) -> FaultRunOutcome {
    let lib = library();
    let pred = (policy == PolicyKind::Abacus).then(mlp);
    run_colocation_faulty(
        &PAIR,
        policy,
        pred,
        lib,
        &GpuSpec::a100(),
        &NoiseModel::calibrated(),
        &cfg(defended),
        plan,
        NodeOptions {
            timeout_factor: defended.then_some(3.0),
        },
    )
}

/// FNV-1a over the full bit pattern of every record — the golden-trace
/// checksum. Any change to any field of any query's record changes it.
fn trace_checksum(records: &[QueryRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in records {
        eat(r.service as u64);
        eat(r.arrival_ms.to_bits());
        eat(r.latency_ms.to_bits());
        eat(r.qos_ms.to_bits());
        eat(match r.outcome {
            QueryOutcome::Completed => 0,
            QueryOutcome::Dropped => 1,
            QueryOutcome::TimedOut => 2,
        });
        eat(u64::from(r.requests));
        eat(r.queue_ms.to_bits());
    }
    h
}

fn arb_kernel_spikes() -> impl Strategy<Value = KernelSpikes> {
    (0.0f64..=1.0, 1.0f64..6.0, 0.0f64..800.0, 0.0f64..1500.0).prop_map(
        |(prob, factor, start, span)| KernelSpikes {
            prob,
            factor,
            window_start_ms: start,
            window_end_ms: start + span,
        },
    )
}

fn arb_predictor_fault() -> impl Strategy<Value = PredictorFault> {
    prop_oneof![
        (0.0f64..3.0).prop_map(|factor| PredictorFault::Bias { factor }),
        (0.0f64..100.0).prop_map(|value_ms| PredictorFault::Freeze { value_ms }),
    ]
}

fn arb_burst() -> impl Strategy<Value = ArrivalBurst> {
    (0.0f64..1000.0, 0.0f64..500.0, 0.0f64..120.0).prop_map(|(start, span, qps)| ArrivalBurst {
        start_ms: start,
        end_ms: start + span,
        extra_qps: qps,
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..u64::MAX,
        proptest::option::of(arb_kernel_spikes()),
        proptest::option::of(arb_predictor_fault()),
        proptest::option::of(arb_burst()),
    )
        .prop_map(|(seed, kernel, predictor, burst)| FaultPlan {
            seed,
            kernel,
            predictor,
            burst,
            degraded: Vec::new(),
        })
}

/// Invariants + conservation for one outcome: however badly the run went,
/// the books must balance.
fn assert_sound(out: &FaultRunOutcome) {
    assert_eq!(
        out.invariant_violations,
        Vec::<String>::new(),
        "serving invariants violated"
    );
    let s = &out.result.all;
    assert_eq!(s.total(), out.records.len());
    assert_eq!(s.completed() + s.dropped() + s.timed_out(), s.total());
    for r in &out.records {
        assert!(r.latency_ms.is_finite() && r.latency_ms >= 0.0);
        assert!(r.queue_ms.is_finite() && r.queue_ms >= 0.0);
        assert!(r.queue_ms <= r.latency_ms + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever the fault plan, the defended Abacus stack holds every
    /// serving invariant and retires every issued query exactly once.
    #[test]
    fn random_faults_cannot_break_serving_invariants(plan in arb_plan()) {
        assert_sound(&run_faulty(PolicyKind::Abacus, true, &plan));
    }

    /// The same holds for a baseline policy with no defences enabled —
    /// the invariant checker is not relying on the defensive runtime.
    #[test]
    fn random_faults_cannot_break_undefended_baseline(plan in arb_plan()) {
        assert_sound(&run_faulty(PolicyKind::Fcfs, false, &plan));
    }

    /// A fault-wrapped predictor never leaks NaN, infinity, or a negative
    /// number into the scheduler, whatever poison the inner model emits.
    #[test]
    fn faulty_model_output_is_always_sane(
        fault in arb_predictor_fault(),
        poison in prop_oneof![
            -1e300f64..1e300,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
        ],
    ) {
        struct Echo(f64);
        impl LatencyModel for Echo {
            fn predict_one(&self, _: &[f64]) -> f64 { self.0 }
            fn name(&self) -> &'static str { "echo" }
        }
        let m = FaultyModel::new(Arc::new(Echo(poison)), fault);
        let y = m.predict_one(&[0.0]);
        prop_assert!(y.is_finite() && y >= 0.0, "{fault:?} on {poison} gave {y}");
        let mut out = Vec::new();
        m.predict_into(&[0.0; predictor::FEATURE_DIM], 1, &mut out);
        prop_assert!(out[0].is_finite() && out[0] >= 0.0);
    }

    /// The sanitiser itself is total: finite, non-negative on all of f64.
    #[test]
    fn sanitize_prediction_is_total(
        x in prop_oneof![
            -1e300f64..1e300,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0f64),
            Just(f64::MIN_POSITIVE),
        ],
    ) {
        let y = sanitize_prediction(x);
        prop_assert!(y.is_finite() && y >= 0.0);
    }

    /// Bit-exact reproducibility under faults: the same plan and seed
    /// yield the identical trace, checksum and all.
    #[test]
    fn same_plan_same_trace(intensity in 0.0f64..=1.0, seed in 0u64..50) {
        let plan = FaultPlan::at_intensity(seed, intensity);
        let a = run_faulty(PolicyKind::Abacus, true, &plan);
        let b = run_faulty(PolicyKind::Abacus, true, &plan);
        prop_assert_eq!(trace_checksum(&a.records), trace_checksum(&b.records));
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.degraded, b.degraded);
    }
}

/// `FaultPlan::none()` through the fault-aware runner is bit-identical to
/// the plain runner that predates the fault layer, for both a baseline and
/// the full Abacus stack.
#[test]
fn golden_none_plan_matches_plain_runner_bitwise() {
    let lib = library();
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    for policy in [PolicyKind::Fcfs, PolicyKind::Abacus] {
        let pred = (policy == PolicyKind::Abacus).then(mlp);
        let c = cfg(false);
        let plain = run_colocation(&PAIR, policy, pred.clone(), lib, &gpu, &noise, &c);
        let faulty = run_colocation_faulty(
            &PAIR,
            policy,
            pred,
            lib,
            &gpu,
            &noise,
            &c,
            &FaultPlan::none(),
            NodeOptions::default(),
        );
        assert!(faulty.invariant_violations.is_empty());
        assert!(!faulty.degraded);
        assert_eq!(plain.all.total(), faulty.result.all.total());
        assert_eq!(
            plain.all.p99_latency().to_bits(),
            faulty.result.all.p99_latency().to_bits(),
            "{}: p99 drifted",
            policy.name()
        );
        assert_eq!(
            plain.all.mean_latency().to_bits(),
            faulty.result.all.mean_latency().to_bits()
        );
        assert_eq!(
            plain.violation_ratio().to_bits(),
            faulty.result.violation_ratio().to_bits()
        );
    }
}

/// Checksum pin of the no-fault FCFS golden trace. This value changes only
/// if the *no-fault* serving path changes behaviour — which is exactly what
/// the fault layer must never do. Update it only for an intentional change
/// to baseline serving semantics.
#[test]
fn golden_no_fault_trace_checksum_is_pinned() {
    let out = run_faulty(PolicyKind::Fcfs, false, &FaultPlan::none());
    assert_eq!(
        trace_checksum(&out.records),
        GOLDEN_FCFS_TRACE_CHECKSUM,
        "no-fault FCFS trace drifted from the pinned golden checksum"
    );
}

/// See [`golden_no_fault_trace_checksum_is_pinned`].
const GOLDEN_FCFS_TRACE_CHECKSUM: u64 = 9_024_202_897_011_311_138;

/// The full intensity × policy sweep the CLI `faults` subcommand runs, at
/// a longer horizon: every cell must hold the serving invariants, the
/// whole sweep must reproduce bit-for-bit, and FCFS's violation ratio must
/// be monotone in intensity. Slow, so ignored under plain `cargo test`;
/// `scripts/ci.sh` runs it via `--include-ignored`.
#[test]
#[ignore = "long-running fault sweep; scripts/ci.sh runs it via --include-ignored"]
fn full_sweep_holds_invariants_and_reproduces() {
    let lib = library();
    let gpu = GpuSpec::a100();
    let noise = NoiseModel::calibrated();
    let cfg = ColocationConfig {
        horizon_ms: 4_000.0,
        ..cfg(true)
    };
    let sweep = || -> Vec<(f64, &'static str, u64, f64)> {
        let mut cells = Vec::new();
        for &intensity in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let plan = FaultPlan::at_intensity(23, intensity);
            for (name, policy, defended) in [
                ("fcfs", PolicyKind::Fcfs, false),
                ("abacus+def", PolicyKind::Abacus, true),
            ] {
                let pred = (policy == PolicyKind::Abacus).then(mlp);
                let out = run_colocation_faulty(
                    &PAIR,
                    policy,
                    pred,
                    lib,
                    &gpu,
                    &noise,
                    &cfg,
                    &plan,
                    NodeOptions {
                        timeout_factor: defended.then_some(3.0),
                    },
                );
                assert_eq!(
                    out.invariant_violations,
                    Vec::<String>::new(),
                    "{name} at intensity {intensity}"
                );
                assert_sound(&out);
                cells.push((
                    intensity,
                    name,
                    trace_checksum(&out.records),
                    out.result.violation_ratio(),
                ));
            }
        }
        cells
    };
    let first = sweep();
    assert_eq!(first, sweep(), "fault sweep is not bit-reproducible");
    let fcfs: Vec<f64> = first
        .iter()
        .filter(|c| c.1 == "fcfs")
        .map(|c| c.3)
        .collect();
    for w in fcfs.windows(2) {
        assert!(
            w[1] >= w[0] - 0.02,
            "FCFS violation ratio not monotone in intensity: {fcfs:?}"
        );
    }
}
