#!/usr/bin/env bash
# Quick perf regression gate for the perf-tracked paths:
#
#   * the batched MLP inference microbench (BENCH_search.json)
#   * the serving substrate: executor groups/sec + fig14 cell wall time
#     (BENCH_serving.json); its --check also gates the telemetry overhead —
#     a Telemetry with the run-health monitors enabled (sketches, drift,
#     SLO burn, flight recorder) may cost at most 2% of an Abacus cell
#   * cold-start offline training: minibatch trainer throughput and the
#     serial/pooled weight-identity contract (BENCH_train.json)
#   * the discrete-event engine core: events/sec vs the embedded
#     pre-overhaul baseline engine, plus a bit-identity cross-check of the
#     two engines' completions (BENCH_engine.json)
#   * the decision hot path: decision rounds/sec vs the embedded
#     pre-overhaul controller, plus a bit-identity cross-check of the two
#     controllers' decision streams (BENCH_decision.json)
#   * the cluster ingress hot path: routed queries/sec through the
#     headroom router vs the embedded pre-overhaul round-robin cluster
#     path, with a warmup-vs-timed checksum cross-check of each path and
#     a >=3x routed-vs-round-robin speedup floor (BENCH_cluster.json)
#
# Each bench re-measures itself in quick mode and fails (exit 1) if it
# regressed by more than 2x against its committed baseline. Regenerate a
# baseline after an intentional perf change with:
#
#   cargo run --release -p bench --bin search_bench
#   cargo run --release -p bench --bin serving_bench -- --baseline-gps <old>
#   cargo run --release -p bench --bin train_bench
#   cargo run --release -p bench --bin engine_bench
#   cargo run --release -p bench --bin decision_bench
#   cargo run --release -p bench --bin cluster_bench
set -euo pipefail
cd "$(dirname "$0")/.."

SEARCH_BASELINE="${1:-BENCH_search.json}"
SERVING_BASELINE="${2:-BENCH_serving.json}"
TRAIN_BASELINE="${3:-BENCH_train.json}"
ENGINE_BASELINE="${4:-BENCH_engine.json}"
DECISION_BASELINE="${5:-BENCH_decision.json}"
CLUSTER_BASELINE="${6:-BENCH_cluster.json}"

for f in "$SEARCH_BASELINE" "$SERVING_BASELINE" "$TRAIN_BASELINE" "$ENGINE_BASELINE" "$DECISION_BASELINE" "$CLUSTER_BASELINE"; do
    if [[ ! -f "$f" ]]; then
        echo "baseline $f not found — generate it first (see header of $0)" >&2
        exit 2
    fi
done

cargo run --release -q -p bench --bin search_bench -- --quick --check "$SEARCH_BASELINE"
cargo run --release -q -p bench --bin serving_bench -- --quick --check "$SERVING_BASELINE"
cargo run --release -q -p bench --bin train_bench -- --quick --check "$TRAIN_BASELINE"
cargo run --release -q -p bench --bin engine_bench -- --quick --check "$ENGINE_BASELINE"
cargo run --release -q -p bench --bin decision_bench -- --quick --check "$DECISION_BASELINE"
cargo run --release -q -p bench --bin cluster_bench -- --quick --check "$CLUSTER_BASELINE"

# Fault-sweep determinism gate: the `faults` subcommand must emit
# byte-identical CSVs whether its cells run serially or on the rayon pool
# (the repo-wide reproducibility contract, under fault injection).
echo "== fault sweep serial/parallel byte gate =="
FAULTS_SERIAL=$(mktemp -d)
FAULTS_PARALLEL=$(mktemp -d)
trap 'rm -rf "$FAULTS_SERIAL" "$FAULTS_PARALLEL"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- faults --fast --out "$FAULTS_SERIAL" --serial >/dev/null
cargo run --release -q -p abacus-cli --bin abacus-repro -- faults --fast --out "$FAULTS_PARALLEL" >/dev/null
cmp "$FAULTS_SERIAL/faults.csv" "$FAULTS_PARALLEL/faults.csv" || {
    echo "fault sweep diverged between serial and parallel runs" >&2
    exit 1
}

# Pareto-sweep determinism gate: the `pareto` subcommand (fixed-margin vs
# conformal certification) must also emit byte-identical CSVs across the
# serial and parallel cell schedules — including the trained-and-cached
# certifier artifacts feeding it.
echo "== pareto sweep serial/parallel byte gate =="
PARETO_SERIAL=$(mktemp -d)
PARETO_PARALLEL=$(mktemp -d)
trap 'rm -rf "$FAULTS_SERIAL" "$FAULTS_PARALLEL" "$PARETO_SERIAL" "$PARETO_PARALLEL"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- pareto --fast --out "$PARETO_SERIAL" --serial >/dev/null
cargo run --release -q -p abacus-cli --bin abacus-repro -- pareto --fast --out "$PARETO_PARALLEL" >/dev/null
for f in pareto.csv pareto_width.csv; do
    cmp "$PARETO_SERIAL/$f" "$PARETO_PARALLEL/$f" || {
        echo "pareto sweep $f diverged between serial and parallel runs" >&2
        exit 1
    }
done

# Run-health determinism gate: the `health` study's monitors (drift CUSUMs,
# burn-rate windows, flight recorder) run on the simulation clock, so the
# whole report — CSV and JSON alert streams included — must be byte-identical
# across the serial and parallel cell schedules.
echo "== run-health serial/parallel byte gate =="
HEALTH_SERIAL=$(mktemp -d)
HEALTH_PARALLEL=$(mktemp -d)
trap 'rm -rf "$FAULTS_SERIAL" "$FAULTS_PARALLEL" "$PARETO_SERIAL" "$PARETO_PARALLEL" "$HEALTH_SERIAL" "$HEALTH_PARALLEL"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- health --fast --out "$HEALTH_SERIAL" --serial >/dev/null
cargo run --release -q -p abacus-cli --bin abacus-repro -- health --fast --out "$HEALTH_PARALLEL" >/dev/null
for f in health.csv health.json flight.json; do
    cmp "$HEALTH_SERIAL/$f" "$HEALTH_PARALLEL/$f" || {
        echo "run-health study $f diverged between serial and parallel runs" >&2
        exit 1
    }
done

echo "all bench gates passed"
