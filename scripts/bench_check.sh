#!/usr/bin/env bash
# Quick perf regression gate for the search-path prediction round.
#
# Re-measures the batched MLP inference microbench in quick mode and fails
# (exit 1) if ns/prediction regressed by more than 2x against the committed
# BENCH_search.json baseline. Regenerate the baseline after an intentional
# perf change with:
#
#   cargo run --release -p bench --bin search_bench
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_search.json}"
if [[ ! -f "$BASELINE" ]]; then
    echo "baseline $BASELINE not found — generate it first:" >&2
    echo "  cargo run --release -p bench --bin search_bench" >&2
    exit 2
fi

exec cargo run --release -q -p bench --bin search_bench -- --quick --check "$BASELINE"
