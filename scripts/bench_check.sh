#!/usr/bin/env bash
# Quick perf regression gate for the two perf-tracked paths:
#
#   * the batched MLP inference microbench (BENCH_search.json)
#   * the serving substrate: executor groups/sec + fig14 cell wall time
#     (BENCH_serving.json)
#
# Each bench re-measures itself in quick mode and fails (exit 1) if it
# regressed by more than 2x against its committed baseline. Regenerate a
# baseline after an intentional perf change with:
#
#   cargo run --release -p bench --bin search_bench
#   cargo run --release -p bench --bin serving_bench -- --baseline-gps <old>
set -euo pipefail
cd "$(dirname "$0")/.."

SEARCH_BASELINE="${1:-BENCH_search.json}"
SERVING_BASELINE="${2:-BENCH_serving.json}"

for f in "$SEARCH_BASELINE" "$SERVING_BASELINE"; do
    if [[ ! -f "$f" ]]; then
        echo "baseline $f not found — generate it first (see header of $0)" >&2
        exit 2
    fi
done

cargo run --release -q -p bench --bin search_bench -- --quick --check "$SEARCH_BASELINE"
cargo run --release -q -p bench --bin serving_bench -- --quick --check "$SERVING_BASELINE"
echo "all bench gates passed"
