#!/usr/bin/env bash
# Full local CI: build everything, lint, run the whole test suite, then
# the perf regression gates. This is what a commit must pass.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== clippy =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q

echo "== fault suite (incl. ignored long-runners) =="
cargo test -q -p integration --test fault_properties -- --include-ignored

echo "== engine golden + proptest bit-identity =="
# The optimized event core (SoA + SIMD + calendar queue) must stay
# bit-identical to the embedded straight-line reference engine, on the
# pinned fixed-seed workloads and on randomized property workloads.
cargo test -q -p gpu-sim --test golden_engine

echo "== decision golden + proptest bit-identity =="
# The decision hot path (incremental order index + arena scratch) must
# stay bit-identical to the embedded pre-overhaul controller, on pinned
# fixed-seed replays and grid-quantised random queues, and a steady-state
# decide round must allocate nothing.
cargo test -q -p abacus-core --test golden_decisions
cargo test -q -p abacus-core --test decision_alloc --release

echo "== routing golden + determinism contracts =="
# The headroom router must match the embedded naive reference stream,
# degenerate to least-connections on homogeneous pools, keep serial and
# parallel cluster CSVs byte-identical (with and without the autoscaler),
# score via one batched forward, and be unperturbed by telemetry.
cargo test -q -p cluster --test routing_golden

echo "== certification suites (quantile golden, conformal coverage, byte-identity) =="
# The uncertainty-aware certification stack: the multi-head pinball
# trainer must match its scalar reference (bit-for-bit in the single-chunk
# regime, 1e-9 otherwise), split-conformal calibration must hit its
# coverage band on held-out data, and a run that merely *carries* a
# certifier with the `conformal` flag off must stay byte-identical to the
# pre-certification serving path.
cargo test -q -p predictor --test golden_trainer
cargo test -q -p predictor --lib conformal
cargo test -q -p abacus-core --lib conformal
cargo test -q -p serving --lib certified
cargo test -q -p integration --test predictor_pipeline conformal_upper_bounds
cargo test -q -p integration --test scheduling_policies conformal_disabled

echo "== telemetry-disabled golden checksum =="
# The telemetry-instrumented serving loop with no Telemetry attached must
# stay byte-identical to the pre-telemetry loop — pinned by the no-fault
# golden trace checksum.
cargo test -q -p integration --test fault_properties golden_no_fault

echo "== trace export smoke =="
TRACE_OUT=$(mktemp -d)
trap 'rm -rf "$TRACE_OUT"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- trace --fast --out "$TRACE_OUT" >/dev/null
python3 -m json.tool "$TRACE_OUT/trace.json" >/dev/null || {
    echo "trace.json is not valid JSON" >&2
    exit 1
}
for f in ledger.csv pred_error.csv kernel_spans.csv; do
    [[ -s "$TRACE_OUT/$f" ]] || { echo "trace artifact $f missing/empty" >&2; exit 1; }
done
# Determinism contract: the prediction-error sweep emits byte-identical
# CSVs whether its cells run serially or on the rayon pool.
TRACE_SERIAL=$(mktemp -d)
trap 'rm -rf "$TRACE_OUT" "$TRACE_SERIAL"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- trace --fast --out "$TRACE_SERIAL" --serial >/dev/null
cmp "$TRACE_OUT/pred_error.csv" "$TRACE_SERIAL/pred_error.csv" || {
    echo "telemetry sweep diverged between serial and parallel runs" >&2
    exit 1
}
cmp "$TRACE_OUT/trace.json" "$TRACE_SERIAL/trace.json" || {
    echo "trace.json diverged between serial and parallel runs" >&2
    exit 1
}

echo "== run-health smoke =="
HEALTH_OUT=$(mktemp -d)
trap 'rm -rf "$TRACE_OUT" "$TRACE_SERIAL" "$HEALTH_OUT"' EXIT
cargo run --release -q -p abacus-cli --bin abacus-repro -- health --fast --out "$HEALTH_OUT" >/dev/null
for f in health.json flight.json; do
    python3 -m json.tool "$HEALTH_OUT/$f" >/dev/null || {
        echo "$f is not valid JSON" >&2
        exit 1
    }
done
[[ -s "$HEALTH_OUT/health.csv" ]] || { echo "health.csv missing/empty" >&2; exit 1; }

echo "== bench gates =="
scripts/bench_check.sh

echo "CI passed"
