#!/usr/bin/env bash
# Full local CI: build everything, lint, run the whole test suite, then
# the perf regression gates. This is what a commit must pass.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, all targets) =="
cargo build --release --workspace --all-targets

echo "== clippy =="
cargo clippy -q --workspace -- -D warnings

echo "== tests =="
cargo test -q

echo "== fault suite (incl. ignored long-runners) =="
cargo test -q -p integration --test fault_properties -- --include-ignored

echo "== bench gates =="
scripts/bench_check.sh

echo "CI passed"
