//! Offline stand-in for the slice of `rayon` this workspace uses.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors `par_iter()` locally. The returned [`ParIter`] supports the
//! `enumerate().map().collect()` chain the profiler uses; `collect` fans
//! the mapped closures out over `std::thread::scope` in contiguous chunks
//! (one per available core), so profiling campaigns still use the
//! machine's cores even without upstream rayon's work-stealing pool.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Enumerated variant of [`ParIter`].
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

/// Mapped parallel pipeline; terminal operation is `collect`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    pub fn map<R, F: Fn(&'a T) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn map<R, F: Fn((usize, &'a T)) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Apply `f` to every index of `items` across scoped threads, preserving
/// input order in the output.
fn parallel_map_indexed<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: impl Fn(usize, &'a T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads_for(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (w, dst) in out.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            let src = &items[base..(base + dst.len())];
            scope.spawn(move || {
                for (k, (slot, item)) in dst.iter_mut().zip(src).enumerate() {
                    *slot = Some(f(base + k, item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("worker filled slot")).collect()
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<ParIter<'a, T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.inner.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParMap<ParEnumerate<'a, T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.inner.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_map_collect() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_line_up() {
        let xs = vec![10u64, 20, 30, 40, 50];
        let tagged: Vec<(usize, u64)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
