//! Offline stand-in for the slice of `rayon` this workspace uses.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors `par_iter()` locally. The returned [`ParIter`] supports the
//! `enumerate().map().collect()` chain the profiler uses; `collect` fans
//! the mapped closures out over `std::thread::scope` in contiguous chunks
//! (one per available core), so profiling campaigns still use the
//! machine's cores even without upstream rayon's work-stealing pool.

use std::num::NonZeroUsize;

pub mod pool;

pub mod prelude {
    pub use crate::IntoParallelIterator;
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Enumerated variant of [`ParIter`].
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

/// Mapped parallel pipeline; terminal operation is `collect`.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    pub fn map<R, F: Fn(&'a T) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn map<R, F: Fn((usize, &'a T)) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

fn threads_for(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Would fanning `len` items out over threads actually use more than one
/// worker? False on single-core hosts and for degenerate (0- or 1-item)
/// inputs — callers with a cheap serial path (e.g. an experiment driver
/// deciding whether to build per-thread state) can skip the scoped-thread
/// machinery entirely when this is false. The `collect` paths below
/// already degrade to a serial loop in the same cases, so consulting this
/// helper never changes results, only overhead.
pub fn worth_fanning_out(len: usize) -> bool {
    len >= 2 && threads_for(len) > 1
}

/// Apply `f` to every index of `items` across scoped threads, preserving
/// input order in the output.
fn parallel_map_indexed<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: impl Fn(usize, &'a T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads_for(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    std::thread::scope(|scope| {
        for (w, dst) in out.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            let src = &items[base..(base + dst.len())];
            scope.spawn(move || {
                for (k, (slot, item)) in dst.iter_mut().zip(src).enumerate() {
                    *slot = Some(f(base + k, item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("worker filled slot")).collect()
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<ParIter<'a, T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.inner.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

impl<'a, T: Sync, R: Send, F: Fn((usize, &'a T)) -> R + Sync> ParMap<ParEnumerate<'a, T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_indexed(self.inner.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }
}

/// `.into_par_iter()` on owned collections (`Vec<T>`, `Range<usize>`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// Owning parallel iterator.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// Enumerated variant of [`IntoParIter`].
pub struct IntoParEnumerate<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    pub fn enumerate(self) -> IntoParEnumerate<T> {
        IntoParEnumerate { items: self.items }
    }

    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

impl<T: Send> IntoParEnumerate<T> {
    pub fn map<R, F: Fn((usize, T)) -> R>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }
}

/// Apply `f` to every owned item across scoped threads (contiguous chunks,
/// one per available core), preserving input order in the output.
fn parallel_map_owned<T: Send, R: Send>(
    items: Vec<T>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads_for(n);
    if workers == 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, c)| {
                let base = w * chunk;
                scope.spawn(move || {
                    c.into_iter()
                        .enumerate()
                        .map(|(k, t)| f(base + k, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<IntoParIter<T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_owned(self.inner.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }
}

impl<T: Send, R: Send, F: Fn((usize, T)) -> R + Sync> ParMap<IntoParEnumerate<T>, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_owned(self.inner.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_map_collect() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_line_up() {
        let xs = vec![10u64, 20, 30, 40, 50];
        let tagged: Vec<(usize, u64)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn into_par_iter_moves_items_in_order() {
        let xs: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let out: Vec<String> = xs.clone().into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out.len(), xs.len());
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}!"));
        }
    }

    #[test]
    fn into_par_iter_enumerate() {
        let xs = vec![5u64, 6, 7];
        let out: Vec<u64> = xs.into_par_iter().enumerate().map(|(i, x)| i as u64 * 100 + x).collect();
        assert_eq!(out, vec![5, 106, 207]);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (3..10).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn worth_fanning_out_degenerate_inputs() {
        // Never worth it for 0 or 1 items, whatever the host.
        assert!(!crate::worth_fanning_out(0));
        assert!(!crate::worth_fanning_out(1));
        // For larger inputs the answer is exactly "more than one core".
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        assert_eq!(crate::worth_fanning_out(2), cores > 1);
        assert_eq!(crate::worth_fanning_out(1000), cores > 1);
    }

    #[test]
    fn into_par_iter_empty() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let v: Vec<u8> = Vec::new();
        let out2: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out2.is_empty());
    }
}
