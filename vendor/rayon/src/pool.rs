//! A persistent worker pool for fine-grained, repeated fan-outs.
//!
//! The scoped-thread bridge in the crate root (`par_iter` and friends)
//! spawns OS threads per call, which is fine for coarse work (profiling
//! campaigns, figure sweeps: milliseconds-to-seconds per task) but far too
//! expensive for the minibatch-training inner loop, where one fan-out of a
//! few ~100 µs gradient chunks happens per optimiser step, hundreds of
//! thousands of times per training run. [`run`] instead dispatches task
//! indices to a process-wide pool of parked workers, so the steady-state
//! cost of a fan-out is one condvar notification.
//!
//! Determinism: [`run`] only distributes *indices* `0..n`; which thread
//! executes which index is racy by design, so callers must make task
//! outputs depend on the index alone (e.g. write into per-index slots).
//! Under that contract results are independent of worker count and of
//! scheduling, which is what the training pipeline's fixed-chunk gradient
//! reduction relies on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One published fan-out: a type-erased task body plus claim/completion
/// counters. The closure reference is only dereferenced while the
/// publishing [`run`] call is blocked waiting for `remaining` to reach
/// zero, so the (lifetime-erased) borrow is live for every invocation.
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    n: usize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Tasks claimed-and-not-yet-finished plus unclaimed tasks.
    remaining: AtomicUsize,
}

impl Job {
    /// Claim and execute task indices until none are left. Returns after
    /// this thread can make no further progress on the job; other threads
    /// may still be finishing their claimed indices.
    fn work(&self, shared: &Shared) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            (self.f)(i);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task overall: wake the publisher. Taking the lock
                // orders the notify after the publisher's re-check, so the
                // wake-up cannot be lost.
                let _guard = shared.done.lock().unwrap();
                shared.done_cv.notify_all();
            }
        }
    }
}

/// State shared between the publisher and the workers.
struct Shared {
    /// Monotonic job generation + the current job, if any.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    work_cv: Condvar,
    done: Mutex<()>,
    done_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared = Arc::new(Shared {
            slot: Mutex::new((0, None)),
            work_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        // At least one worker even on a single-core host, so the parallel
        // dispatch path (and the determinism contract it depends on) is
        // exercised everywhere, not only on big machines.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(0)
            .max(1);
        for w in 0..workers {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("abacus-pool-{w}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

fn worker_loop(shared: &Shared) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut guard = shared.slot.lock().unwrap();
            loop {
                if guard.0 != seen_gen {
                    seen_gen = guard.0;
                    if let Some(job) = guard.1.clone() {
                        break job;
                    }
                }
                guard = shared.work_cv.wait(guard).unwrap();
            }
        };
        job.work(shared);
    }
}

/// Number of threads a pooled fan-out can use (workers + the caller).
pub fn max_concurrency() -> usize {
    pool().workers + 1
}

/// Execute `f(0)`, `f(1)`, …, `f(n - 1)` across the worker pool, with the
/// calling thread participating. Blocks until every invocation has
/// returned.
///
/// Only one fan-out runs at a time: a nested or concurrent `run` call
/// (including from inside a task body) executes its tasks inline on the
/// calling thread instead — same results under the indices-only contract,
/// and immune to pool-starvation deadlock.
pub fn run(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    if n == 1 || ACTIVE.swap(true, Ordering::Acquire) {
        // Pool busy (or trivial job): run inline.
        for i in 0..n {
            f(i);
        }
        return;
    }
    let pool = pool();
    // SAFETY(lifetime erasure): `job.f` escapes `f`'s borrow, but every
    // dereference happens in `Job::work`, and this function does not
    // return until `remaining == 0`, i.e. until after the final
    // dereference. Workers that observe the job later only read the
    // counters (`next >= n` stops them before touching `f`).
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let job = Arc::new(Job {
        f: f_static,
        n,
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(n),
    });
    {
        let mut guard = pool.shared.slot.lock().unwrap();
        guard.0 += 1;
        guard.1 = Some(job.clone());
        pool.shared.work_cv.notify_all();
    }
    job.work(&pool.shared);
    let mut guard = pool.shared.done.lock().unwrap();
    while job.remaining.load(Ordering::Acquire) > 0 {
        guard = pool.shared.done_cv.wait(guard).unwrap();
    }
    drop(guard);
    // Retire the job so workers parked on the slot drop their `Arc`s the
    // next time they look, and release the pool for the next fan-out.
    pool.shared.slot.lock().unwrap().1 = None;
    ACTIVE.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_fanouts_are_stable() {
        // The training loop shape: many small fan-outs back to back.
        let slots: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10_000 {
            run(slots.len(), &|i| {
                slots[i].fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 10_000 * (i + 1));
        }
    }

    #[test]
    fn nested_run_degrades_to_inline() {
        let count = AtomicUsize::new(0);
        run(4, &|_| {
            run(3, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn concurrency_is_at_least_two() {
        assert!(max_concurrency() >= 2);
    }
}
