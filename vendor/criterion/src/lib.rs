//! Offline mini benchmark harness.
//!
//! The build container has no cargo registry, so this crate implements the
//! subset of the `criterion` API the workspace's bench targets use:
//! [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, the per-iteration cost
//! is estimated, and `sample_size` samples (batches of iterations sized to
//! be timeable) are collected. The median, minimum and maximum
//! per-iteration times are printed. No plots, no statistics beyond that —
//! enough to compare hot paths and to feed `scripts/bench_check.sh`.
//!
//! Set `ABACUS_BENCH_QUICK=1` to cut warmup and sample counts for CI-style
//! smoke runs.

use std::time::Instant;

pub use std::hint::black_box;

/// Format a nanosecond quantity the way the reports expect.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn quick_mode() -> bool {
    std::env::var_os("ABACUS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Timing loop driver handed to the bench closure.
pub struct Bencher<'a> {
    sample_size: usize,
    result: &'a mut Option<Stats>,
}

/// Per-iteration statistics of one benchmark, nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl Bencher<'_> {
    /// Time `f`, adaptively batching iterations so each sample is long
    /// enough for the OS clock to resolve.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = quick_mode();
        // Warmup + single-shot estimate.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let est_ns = t0.elapsed().as_nanos().max(1) as f64;
        // Aim for ~1 ms per sample (100 µs in quick mode), ≥ 1 iteration.
        let target_ns = if quick { 1e5 } else { 1e6 };
        let iters = ((target_ns / est_ns).ceil() as usize).clamp(1, 1_000_000);
        let samples = if quick {
            self.sample_size.clamp(3, 5)
        } else {
            self.sample_size
        };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        *self.result = Some(Stats {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        });
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut result = None;
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some(s) => println!(
                "{name:<44} time: [{} {} {}]",
                fmt_ns(s.min_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.max_ns)
            ),
            None => println!("{name:<44} (no measurement: closure never called iter)"),
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self { id: p.to_string() }
    }

    pub fn new<P: std::fmt::Display>(function: &str, p: P) -> Self {
        Self {
            id: format!("{function}/{p}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        std::env::set_var("ABACUS_BENCH_QUICK", "1");
        let mut c = Criterion::default().sample_size(5);
        let mut ran = false;
        c.bench_function("smoke/add", |b| {
            ran = true;
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input() {
        std::env::set_var("ABACUS_BENCH_QUICK", "1");
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("smoke_group");
        for n in [1usize, 4] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        g.finish();
    }
}
