//! Offline drop-in subset of the `rand` crate.
//!
//! The build container has no network access and no cargo registry cache,
//! so the workspace vendors the tiny slice of the `rand` API it actually
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen::<f64>()`, `gen::<u64>()` and `gen_range(Range<_>)`.
//!
//! The backend is xoshiro256++ seeded through the SplitMix64 expander —
//! the stream differs from upstream `StdRng` (ChaCha12), but every
//! consumer in the workspace only requires a deterministic, well-mixed
//! stream, not a specific one.

pub mod rngs {
    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng` within this workspace).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        rngs::StdRng { s }
    }
}

/// Types samplable from the "standard" distribution (subset).
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with `gen_range(lo..hi)` (subset).
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Lemire-style widening multiply keeps the bias negligible
                // (span << 2^64 everywhere in this workspace).
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

/// The `Rng` extension trait (subset).
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
