//! Offline mini property-testing harness.
//!
//! The build container has no cargo registry, so this crate implements the
//! subset of the `proptest` API the workspace's property tests rely on:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, [`Strategy::prop_map`], `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled inputs via the assert message), and sampling is plain uniform.
//! Each test's RNG is seeded from its name, so runs are deterministic.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of type `Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    /// The constant strategy: always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies of a common value type
    /// (the expansion of [`prop_oneof!`]). Unweighted, unlike upstream.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = (0..self.arms.len()).sample(rng);
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let x = rng.next_u64() as u128;
                    self.start.wrapping_add(((x * span) >> 64) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3)
    );
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s (the expansion of `proptest::option::of`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(element)` — `Some` three times out of four
    /// (upstream defaults to mostly-`Some` too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.75 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, 1..12)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test run configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ RNG seeded from the test name.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, expanded through SplitMix64.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            Self { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice between strategies yielding the same value type:
/// `prop_oneof![strat_a, strat_b, ...]`. Unweighted (upstream's
/// `weight => strategy` form is not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Assert inside a property body; panics with the formatted message on
/// failure (no shrinking in this offline harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declare property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $argpat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        /// prop_map and tuples compose.
        #[test]
        fn map_compose(v in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 18);
        }

        /// collection::vec respects the length range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// Inclusive f64 ranges, Just, prop_oneof and option::of compose.
        #[test]
        fn extended_strategies(
            x in 0.0f64..=1.0,
            y in prop_oneof![Just(-1.0f64), 5.0f64..6.0],
            o in crate::option::of(2u64..5),
        ) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!(y == -1.0 || (5.0..6.0).contains(&y));
            if let Some(v) = o {
                prop_assert!((2..5).contains(&v));
            }
        }
    }
}
